//! Cache-coherence bench: Bypass vs CloseToOpen vs LockDriven on the
//! reader-writer workloads ([`ReaderWriter`]) under GPFS-style tokens.
//!
//! Three data paths for atomic `Strategy::FileLocking(Exact)` I/O:
//!
//! * **bypass** — `IoPath::Direct`: ROMIO behaviour, every access goes to
//!   the servers ("while a file region is locked, all read/write requests
//!   to it will directly go to the file server");
//! * **close_to_open** — `IoPath::Cached` with blanket coherence: every
//!   atomic access is bracketed by `sync` + full-cache `invalidate` (§3),
//!   so warm bytes are thrown away before they can be re-used;
//! * **lock_driven** — `IoPath::Cached` under
//!   `CoherenceMode::LockDriven`: a held token confers cache-validity
//!   rights, conflicting acquisitions revoke (flushing + invalidating
//!   exactly the contested ranges), re-reads hit warm pages, and no
//!   blanket invalidation ever runs.
//!
//! Two panels per process count: **checkpoint-then-reread** (conflict-free
//! re-reads — the cache-friendliness axis) and **producer-consumer**
//! (token ping-pong every round — the revocation-correctness axis; every
//! read asserts the exact current-round stamp, so a stale byte fails the
//! run).
//!
//! Emits `BENCH_coherence.json`. Acceptance (full geometry, P = 8,
//! checkpoint-then-reread): lock-driven cached atomic I/O must issue
//! **≥ 5× fewer server read requests** than the direct bypass path, with
//! byte-identical, checker-verified file contents across all three modes
//! and zero stale reads observed anywhere.
//!
//! **Cost model for revocation flushes:** a revocation-triggered flush is
//! a first-class write. Its bytes *occupy the I/O-server horizons* (they
//! appear in `server_service` and delay later requests to the same
//! servers, exactly like an explicit `sync`), and the revoking *acquirer*
//! is charged the flat `token_revoke_ns` plus `token_revoke_byte_ns` per
//! flushed write-behind byte — the holder's clock may be anywhere, so the
//! wait is billed where it is actually suffered. Large write-behind
//! transfers therefore no longer ride free under `lock_driven`: makespans
//! are comparable across all three modes, and the *request-count* metrics
//! (`server_read_requests`, the acceptance criterion) count real requests
//! on every path.
//!
//! Run with `cargo bench -p atomio-bench --bench coherence`; pass
//! `-- --smoke` for the quick CI geometry, `-- --out <path>` to choose
//! where the JSON lands (default: the workspace root), and
//! `-- --trace <path>` to additionally dump a Perfetto-loadable
//! Chrome-trace timeline of the lock-driven producer-consumer run (the
//! revocation-heavy one).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use atomio_bench::json_latency;
use atomio_core::verify::check_mpi_atomicity;
use atomio_core::{Atomicity, IoPath, LockGranularity, MpiFile, OpenMode, Strategy};
use atomio_msg::run;
use atomio_pfs::{
    CacheParams, CoherenceMode, FileSystem, LatencySnapshot, LockKind, PlatformProfile,
};
use atomio_trace::{MemorySink, TraceSink};
use atomio_vtime::VNanos;
use atomio_workloads::{ReaderWriter, RwPreset};

struct Config {
    block: u64,
    rounds: u64,
    rereads: u64,
    procs: Vec<usize>,
    out: PathBuf,
    trace: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            "--trace" => trace = args.next().map(PathBuf::from),
            // `cargo bench` forwards harness flags; ignore the rest.
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_coherence.json");
        p
    });
    if smoke {
        Config {
            block: 8 * 1024,
            rounds: 2,
            rereads: 2,
            procs: vec![4],
            out,
            trace,
            smoke,
        }
    } else {
        Config {
            block: 64 * 1024,
            rounds: 4,
            rereads: 4,
            procs: vec![4, 8],
            out,
            trace,
            smoke,
        }
    }
}

/// One coherence mode of the comparison.
#[derive(Debug, Clone, Copy)]
struct Mode {
    key: &'static str,
    io_path: IoPath,
    coherence: CoherenceMode,
}

const MODES: [Mode; 3] = [
    Mode {
        key: "bypass",
        io_path: IoPath::Direct,
        coherence: CoherenceMode::CloseToOpen,
    },
    Mode {
        key: "close_to_open",
        io_path: IoPath::Cached,
        coherence: CoherenceMode::CloseToOpen,
    },
    Mode {
        key: "lock_driven",
        io_path: IoPath::Cached,
        coherence: CoherenceMode::LockDriven,
    },
];

/// GPFS-flavoured test platform: distributed tokens over fast_test
/// timing, with a cache large enough to hold a rank's working set and a
/// write-behind threshold the blocks stay under.
fn profile(coherence: CoherenceMode) -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence,
        cache: CacheParams {
            enabled: true,
            page_size: 4 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: 1024 * 1024,
            max_bytes: 4 * 1024 * 1024,
            mem: atomio_vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// Aggregate counters of one whole run (all ranks).
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    makespan_ns: VNanos,
    server_read_requests: u64,
    server_write_requests: u64,
    cache_hit_bytes: u64,
    coherent_hit_bytes: u64,
    flushed_bytes: u64,
    revocations_served: u64,
    revoke_flushed_bytes: u64,
    coherence_invalidated_bytes: u64,
    stale_reads: u64,
}

fn json_totals(t: &Totals) -> String {
    format!(
        "{{\"makespan_ns\": {}, \"server_read_requests\": {}, \"server_write_requests\": {}, \
         \"cache_hit_bytes\": {}, \"coherent_hit_bytes\": {}, \"flushed_bytes\": {}, \
         \"revocations_served\": {}, \"revoke_flushed_bytes\": {}, \
         \"coherence_invalidated_bytes\": {}, \"stale_reads\": {}}}",
        t.makespan_ns,
        t.server_read_requests,
        t.server_write_requests,
        t.cache_hit_bytes,
        t.coherent_hit_bytes,
        t.flushed_bytes,
        t.revocations_served,
        t.revoke_flushed_bytes,
        t.coherence_invalidated_bytes,
        t.stale_reads,
    )
}

/// Run one reader-writer workload under one mode; returns the totals, the
/// latency histograms, and the final (synced) file bytes. When `sink` is
/// given, every rank's and server's events are recorded into it.
fn run_mode(
    spec: ReaderWriter,
    mode: Mode,
    name: &str,
    sink: Option<&Arc<MemorySink>>,
) -> (Totals, LatencySnapshot, Vec<u8>) {
    let fs = FileSystem::new(profile(mode.coherence));
    if let Some(s) = sink {
        fs.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
    }
    let sink = sink.cloned();
    let out = run(spec.p, fs.profile().net.clone(), |comm| {
        if let Some(s) = &sink {
            comm.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
        }
        let rank = comm.rank();
        let own = spec.owner_range(rank);
        let read = spec.read_range(rank);
        let target = spec.read_target(rank);
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        file.set_io_path(mode.io_path);
        comm.barrier();
        let start = comm.clock().now();
        let mut stale = 0u64;
        for round in 0..spec.rounds {
            let data = vec![spec.stamp(rank, round); spec.block as usize];
            file.write_at(own.start, &data).unwrap();
            // The barrier publishes "round `round` written everywhere":
            // any read now serving an older stamp is a stale read.
            comm.barrier();
            let want = spec.stamp(target, round);
            let mut buf = vec![0u8; spec.block as usize];
            for _ in 0..spec.rereads {
                file.read_at(read.start, &mut buf).unwrap();
                stale += buf.iter().filter(|&&b| b != want).count() as u64;
            }
            comm.barrier();
        }
        let end = comm.clock().now();
        let close = file.close().unwrap();
        (start, end, close.stats, stale)
    });
    let start = out.iter().map(|(s, _, _, _)| *s).min().unwrap_or(0);
    let end = out.iter().map(|(_, e, _, _)| *e).max().unwrap_or(0);
    let mut t = Totals {
        makespan_ns: end - start,
        ..Totals::default()
    };
    for (_, _, s, stale) in &out {
        t.server_read_requests += s.server_read_requests;
        t.server_write_requests += s.server_write_requests;
        t.cache_hit_bytes += s.cache_hit_bytes;
        t.coherent_hit_bytes += s.coherent_hit_bytes;
        t.flushed_bytes += s.flushed_bytes;
        t.revocations_served += s.revocations_served;
        t.revoke_flushed_bytes += s.revoke_flushed_bytes;
        t.coherence_invalidated_bytes += s.coherence_invalidated_bytes;
        t.stale_reads += stale;
    }
    assert_eq!(
        t.stale_reads, 0,
        "{name}: a reader observed a stale (pre-round) byte"
    );
    let latency = fs.latency_snapshot();
    let snap = fs.snapshot(name).expect("file written");
    assert_eq!(
        snap,
        spec.expected_final(),
        "{name}: final contents differ from the model"
    );
    // Checker pass: the final state must be exactly one writer's stamp per
    // owned block — the verifier reconstructs who wrote what.
    let views = spec.all_views();
    let patterns: Vec<_> = (0..spec.p)
        .map(|r| {
            let v = spec.stamp(r, spec.rounds - 1);
            move |_off: u64| v
        })
        .collect();
    let rep = check_mpi_atomicity(&snap, &views, &patterns);
    assert!(rep.is_atomic(), "{name}: not MPI-atomic: {rep:?}");
    (t, latency, snap)
}

fn main() {
    let cfg = parse_args();
    // All three modes share the platform's revocation cost model; quote it
    // in the header and JSON so the flushed-byte freight is interpretable.
    let revoke_byte_ns = profile(CoherenceMode::LockDriven).token_revoke_byte_ns;
    println!(
        "coherence bench: reader-writer rounds, {} B blocks x {} rounds x {} rereads{}",
        cfg.block,
        cfg.rounds,
        cfg.rereads,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "revocation cost model: token_revoke_ns flat + {revoke_byte_ns} ns per flushed byte, \
         charged to the acquirer"
    );
    println!(
        "{:>4} {:>20} {:>14}  {:>14} {:>10} {:>10} {:>12} {:>8} {:>12}",
        "P",
        "preset",
        "mode",
        "makespan_ns",
        "srv_reads",
        "srv_writes",
        "hit_bytes",
        "revokes",
        "revoke_flush"
    );

    /// One (process count, preset) panel: per-mode totals and latency.
    type Panel = (usize, RwPreset, Vec<(Mode, Totals, LatencySnapshot)>);
    let presets = [RwPreset::CheckpointReread, RwPreset::ProducerConsumer];
    let trace_sink = cfg.trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    let mut panels: Vec<Panel> = Vec::new();
    for &p in &cfg.procs {
        for preset in presets {
            let spec = ReaderWriter::new(p, cfg.block, cfg.rounds, cfg.rereads, preset)
                .expect("valid geometry");
            let mut row = Vec::new();
            let mut reference: Option<Vec<u8>> = None;
            for mode in MODES {
                let name = format!("coh-{p}-{}-{}", preset.label(), mode.key);
                // Trace the revocation-heavy run: lock-driven coherence on
                // the producer-consumer ping-pong at the smallest P.
                let traced = mode.key == "lock_driven"
                    && preset == RwPreset::ProducerConsumer
                    && p == cfg.procs[0];
                let sink = if traced { trace_sink.as_ref() } else { None };
                let (t, lat, snap) = run_mode(spec, mode, &name, sink);
                match &reference {
                    Some(r) => assert_eq!(
                        r,
                        &snap,
                        "P={p} {}: {} contents differ from bypass",
                        preset.label(),
                        mode.key
                    ),
                    None => reference = Some(snap),
                }
                println!(
                    "{:>4} {:>20} {:>14}  {:>14} {:>10} {:>10} {:>12} {:>8} {:>12}",
                    p,
                    preset.label(),
                    mode.key,
                    t.makespan_ns,
                    t.server_read_requests,
                    t.server_write_requests,
                    t.cache_hit_bytes,
                    t.revocations_served,
                    t.revoke_flushed_bytes
                );
                row.push((mode, t, lat));
            }
            // Producer-consumer under lock-driven coherence must actually
            // exercise the revocation path (token ping-pong every round).
            if preset == RwPreset::ProducerConsumer {
                let ld = row
                    .iter()
                    .find(|(m, _, _)| m.key == "lock_driven")
                    .unwrap()
                    .1;
                assert!(
                    ld.revocations_served > 0,
                    "P={p}: producer-consumer must serve revocations"
                );
                assert!(
                    ld.revoke_flushed_bytes > 0,
                    "P={p}: revocations must flush the producers' write-behind data"
                );
            }
            panels.push((p, preset, row));
        }
    }

    if let (Some(path), Some(sink)) = (&cfg.trace, &trace_sink) {
        std::fs::write(path, sink.export_chrome()).expect("write Chrome trace JSON");
        println!(
            "wrote {} ({} events) — load it at https://ui.perfetto.dev",
            path.display(),
            sink.len()
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"coherence\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"reader-writer rounds over rank-owned blocks under GPFS-style \
         distributed tokens; atomic independent FileLocking(Exact) I/O; every read asserts \
         the exact current-round stamp (stale bytes fail the run)\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"block\": {}, \"rounds\": {}, \"rereads\": {}, \"smoke\": {}}},",
        cfg.block, cfg.rounds, cfg.rereads, cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"cost_model\": {{\"token_revoke_byte_ns\": {revoke_byte_ns}, \"note\": \"a \
         revocation flush charges the acquirer token_revoke_ns plus this per flushed \
         write-behind byte, and the flushed bytes occupy the I/O-server horizons like any \
         other write (they appear in server_service and delay later requests)\"}},",
    );
    let _ = writeln!(
        json,
        "  \"modes\": {{\"bypass\": \"IoPath::Direct — ROMIO-style, every access hits the \
         servers\", \"close_to_open\": \"IoPath::Cached + blanket sync/invalidate around \
         every atomic access\", \"lock_driven\": \"IoPath::Cached + CoherenceMode::LockDriven \
         — tokens confer cache-validity rights, revocation flushes/invalidates exactly the \
         revoked ranges\"}},",
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (p, preset, row)) in panels.iter().enumerate() {
        let bypass = row.iter().find(|(m, _, _)| m.key == "bypass").unwrap().1;
        let _ = writeln!(
            json,
            "    {{\"p\": {p}, \"preset\": \"{}\",",
            preset.label()
        );
        for (mode, t, lat) in row {
            let read_reduction =
                bypass.server_read_requests as f64 / t.server_read_requests.max(1) as f64;
            let speedup = bypass.makespan_ns as f64 / t.makespan_ns.max(1) as f64;
            let _ = writeln!(
                json,
                "     \"{}\": {{\"totals\": {}, \"server_read_reduction\": {:.2}, \
                 \"makespan_speedup\": {:.2}, \"latency\": {{\"grant_wait\": {}, \
                 \"revoke_flush\": {}, \"server_service\": {}}}}}{}",
                mode.key,
                json_totals(t),
                read_reduction,
                speedup,
                json_latency(&lat.grant_wait),
                json_latency(&lat.revoke_flush),
                json_latency(&lat.server_service),
                if mode.key == "lock_driven" { "" } else { "," }
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < panels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // Acceptance: P = 8 checkpoint-then-reread at full geometry —
    // lock-driven cached atomic I/O must cut server read requests >= 5x
    // vs the direct bypass path, with zero stale reads anywhere.
    let acceptance = panels
        .iter()
        .find(|(p, preset, _)| *p == 8 && *preset == RwPreset::CheckpointReread && !cfg.smoke);
    match acceptance {
        Some((p, _, row)) => {
            let bypass = row.iter().find(|(m, _, _)| m.key == "bypass").unwrap().1;
            let ld = row
                .iter()
                .find(|(m, _, _)| m.key == "lock_driven")
                .unwrap()
                .1;
            let reduction =
                bypass.server_read_requests as f64 / ld.server_read_requests.max(1) as f64;
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"p\": {p}, \"preset\": \"checkpoint-then-reread\", \
                 \"metric\": \"bypass / lock_driven server read requests\", \
                 \"reduction\": {:.2}, \"threshold\": 5.0, \"byte_identical\": true, \
                 \"stale_reads\": 0, \"pass\": {}}}",
                reduction,
                reduction >= 5.0
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_coherence.json");
            println!("wrote {}", cfg.out.display());
            assert!(
                reduction >= 5.0,
                "acceptance: lock-driven cached atomic I/O must issue >= 5x fewer server \
                 read requests than bypass at P=8 checkpoint-then-reread, got {reduction:.2}x"
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"note\": \"smoke geometry; run without --smoke for the \
                 P=8 acceptance point\"}}"
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_coherence.json");
            println!("wrote {}", cfg.out.display());
        }
    }
}
