//! Two-phase collective I/O benches: aggregator-count sweep and the
//! head-to-head against the paper's strategies, in modeled virtual time
//! (`iter_custom` maps virtual nanoseconds onto bench time, so throughput
//! numbers are the simulator's MiB/s, not host CPU speed).

use std::time::Duration;

use atomio_bench::{measure_colwise, measure_colwise_two_phase, DEFAULT_R};
use atomio_core::{ExchangeSchedule, IoPath, Strategy, TwoPhaseConfig};
use atomio_pfs::PlatformProfile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const M: u64 = 256;
const N: u64 = 8192;
const P: usize = 8;

fn bench_aggregator_sweep_vtime(c: &mut Criterion) {
    // How many aggregators should a platform use? Sweep A over the IBM SP
    // profile (12 I/O servers): too few starves the servers, too many
    // splinters the large writes.
    let mut g = c.benchmark_group("two_phase_aggregators_vtime");
    g.sample_size(10);
    let profile = PlatformProfile::ibm_sp();
    for aggregators in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Bytes(M * N));
        g.bench_with_input(
            BenchmarkId::from_parameter(aggregators),
            &aggregators,
            |b, &a| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        let pt = measure_colwise_two_phase(
                            &profile,
                            M,
                            N,
                            P,
                            DEFAULT_R,
                            Some(Strategy::TwoPhase),
                            IoPath::Direct,
                            TwoPhaseConfig {
                                aggregators: Some(a),
                                ranks_per_node: 1,
                                schedule: ExchangeSchedule::Flat,
                            },
                        );
                        total += Duration::from_nanos(pt.makespan + (i & 7));
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

fn bench_node_aware_placement_vtime(c: &mut Criterion) {
    // Kang et al.: with several ranks per node, spreading aggregators
    // across nodes vs packing them onto the first node.
    let mut g = c.benchmark_group("two_phase_placement_vtime");
    g.sample_size(10);
    let profile = PlatformProfile::ibm_sp();
    for ranks_per_node in [1usize, 4] {
        g.throughput(Throughput::Bytes(M * N));
        g.bench_with_input(
            BenchmarkId::new("ranks_per_node", ranks_per_node),
            &ranks_per_node,
            |b, &rpn| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        let pt = measure_colwise_two_phase(
                            &profile,
                            M,
                            N,
                            P,
                            DEFAULT_R,
                            Some(Strategy::TwoPhase),
                            IoPath::Direct,
                            TwoPhaseConfig {
                                aggregators: Some(4),
                                ranks_per_node: rpn,
                                schedule: ExchangeSchedule::Flat,
                            },
                        );
                        total += Duration::from_nanos(pt.makespan + (i & 7));
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

fn bench_two_phase_vs_strategies_host_cost(c: &mut Criterion) {
    // Host-time cost of simulating each strategy (harness regression guard).
    let mut g = c.benchmark_group("two_phase_simulator_host_cost");
    g.sample_size(10);
    let profile = PlatformProfile::fast_test();
    for strategy in Strategy::compared() {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| measure_colwise(&profile, M, N, P, DEFAULT_R, Some(s), IoPath::Direct))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_aggregator_sweep_vtime, bench_node_aware_placement_vtime,
        bench_two_phase_vs_strategies_host_cost
}
criterion_main!(benches);
