//! The Figure 8 measurement as a criterion bench: virtual makespan of one
//! collective column-wise write per strategy, per platform.
//!
//! `iter_custom` maps the simulator's *virtual* nanoseconds onto criterion's
//! measured `Duration`, so the reported "time" is modeled I/O time (what the
//! paper plots), not host CPU time. Throughput is therefore modeled MiB/s.

use std::time::Duration;

use atomio_bench::{measure_colwise, strategies_for, DEFAULT_R};
use atomio_core::{IoPath, LockGranularity, Strategy};
use atomio_pfs::PlatformProfile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const M: u64 = 256;
const N: u64 = 8192;
const P: usize = 8;

fn bench_strategies_vtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure8_vtime");
    g.sample_size(10);
    for profile in PlatformProfile::paper_platforms() {
        for strategy in strategies_for(&profile) {
            g.throughput(Throughput::Bytes(M * N));
            g.bench_with_input(
                BenchmarkId::new(profile.name.replace(' ', "_"), strategy.label()),
                &strategy,
                |b, &s| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for i in 0..iters {
                            let pt = measure_colwise(
                                &profile,
                                M,
                                N,
                                P,
                                DEFAULT_R,
                                Some(s),
                                IoPath::Direct,
                            );
                            total += Duration::from_nanos(pt.makespan + (i & 7));
                        }
                        total
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_strategies_host_cost(c: &mut Criterion) {
    // Real host time of simulating one collective write: the simulator's
    // own overhead (useful to track harness regressions).
    let mut g = c.benchmark_group("simulator_host_cost");
    g.sample_size(10);
    let profile = PlatformProfile::fast_test();
    for strategy in Strategy::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| measure_colwise(&profile, M, N, P, DEFAULT_R, Some(s), IoPath::Direct))
            },
        );
    }
    g.finish();
}

fn bench_process_scaling(c: &mut Criterion) {
    // Rank-ordering vs locking as P grows: the §3.4 scalability claim.
    let mut g = c.benchmark_group("scaling_vtime");
    g.sample_size(10);
    let profile = PlatformProfile::origin2000();
    for p in [2usize, 4, 8, 16] {
        for strategy in [
            Strategy::FileLocking(LockGranularity::Span),
            Strategy::RankOrdering,
        ] {
            g.throughput(Throughput::Bytes(M * N));
            g.bench_with_input(
                BenchmarkId::new(strategy.label(), p),
                &(p, strategy),
                |b, &(p, s)| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for i in 0..iters {
                            let pt = measure_colwise(
                                &profile,
                                M,
                                N,
                                p,
                                DEFAULT_R,
                                Some(s),
                                IoPath::Direct,
                            );
                            total += Duration::from_nanos(pt.makespan + (i & 7));
                        }
                        total
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_strategies_vtime, bench_strategies_host_cost, bench_process_scaling
}
criterion_main!(benches);
