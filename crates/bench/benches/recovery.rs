//! Crash-recovery bench: the [`CrashRecovery`] checkpoint-then-reread
//! workload run under deterministic fault schedules ([`FaultPlan`]) on the
//! lock-driven cached path, measuring what faults *cost* (makespan and
//! grant-wait degradation vs fault rate) while asserting what they must
//! *never* cost (atomicity: zero stale, torn or corrupt reads).
//!
//! Three parts:
//!
//! * **No-fault identity** — a run under `FaultPlan::none()` must be
//!   byte-identical (contents *and* makespan) to a run on a file system
//!   that never heard of faults: the injector's fast path is free.
//! * **Fault-rate sweep** — seeded plans (`FaultPlan::seeded`) at
//!   increasing fault counts; every verification read is classified by the
//!   workload checker ([`ReadAnomaly`]) and must come back clean, while
//!   makespan and p99 grant wait record the degradation.
//! * **Mid-flush crash acceptance** — a hand-built plan tears a journal
//!   append on server 0 mid-flush (power-cut scenario): the record lands
//!   uncommitted, the server crashes, the retrying flush drives restart +
//!   journal replay, and the checker asserts the recovered file shows
//!   **zero** stale/torn reads with ≥ 1 replay and ≥ 1 torn record
//!   discarded.
//!
//! Emits `BENCH_recovery.json`. Run with
//! `cargo bench -p atomio-bench --bench recovery`; `-- --smoke` for the CI
//! geometry, `-- --out <path>` for the JSON, `-- --trace <path>` to dump a
//! Chrome-trace timeline (Category::Fault events included) of the
//! acceptance run.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use atomio_bench::json_latency;
use atomio_core::{Atomicity, IoPath, LockGranularity, MpiFile, OpenMode, Strategy};
use atomio_msg::run;
use atomio_pfs::{
    CacheParams, CoherenceMode, FaultAction, FaultPlan, FaultSite, FaultSnapshot, FileSystem,
    LatencySnapshot, LockKind, PlatformProfile, RestartPolicy,
};
use atomio_trace::{MemorySink, TraceSink};
use atomio_vtime::VNanos;
use atomio_workloads::CrashRecovery;

struct Config {
    block: u64,
    rounds: u64,
    rereads: u64,
    procs: Vec<usize>,
    fault_rates: Vec<usize>,
    out: PathBuf,
    trace: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            "--trace" => trace = args.next().map(PathBuf::from),
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_recovery.json");
        p
    });
    if smoke {
        Config {
            block: 8 * 1024,
            rounds: 2,
            rereads: 2,
            procs: vec![4],
            fault_rates: vec![0, 4, 8],
            out,
            trace,
            smoke,
        }
    } else {
        Config {
            block: 64 * 1024,
            rounds: 4,
            rereads: 4,
            procs: vec![4, 8],
            fault_rates: vec![0, 4, 8, 16],
            out,
            trace,
            smoke,
        }
    }
}

/// GPFS-flavoured platform like the coherence bench, but with a
/// write-behind limit *below* one checkpoint block so every round's write
/// flushes dirty runs mid-run — putting the write-ahead journal (and any
/// scheduled crash) on the round loop's hot path instead of only at close.
fn profile(block: u64) -> PlatformProfile {
    PlatformProfile {
        lock_kind: LockKind::Distributed,
        coherence: CoherenceMode::LockDriven,
        cache: CacheParams {
            enabled: true,
            page_size: 4 * 1024,
            read_ahead_pages: 2,
            write_behind_limit: (block / 2).max(4 * 1024),
            max_bytes: 4 * 1024 * 1024,
            mem: atomio_vtime::MemCost::new(1.0e9),
        },
        ..PlatformProfile::fast_test()
    }
}

/// Aggregate result of one whole run (all ranks).
#[derive(Debug, Clone)]
struct RunResult {
    makespan_ns: VNanos,
    /// Stale/torn/corrupt verification reads observed (must be 0).
    anomalies: u64,
    retries: u64,
    journal_replays: u64,
    torn_discarded: u64,
    faults: FaultSnapshot,
    latency: LatencySnapshot,
    snap: Vec<u8>,
}

/// Run the crash-recovery workload on a file system built with `plan`.
/// Every verification read is classified by the workload checker; the
/// recovered final file must match the fault-free model exactly (the
/// schedule never kills a client, so no round may be rolled back either).
fn run_plan(
    spec: CrashRecovery,
    plan: FaultPlan,
    name: &str,
    sink: Option<&Arc<MemorySink>>,
) -> RunResult {
    let fs = FileSystem::with_faults(profile(spec.rw.block), plan);
    if let Some(s) = sink {
        fs.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
    }
    let sink = sink.cloned();
    let rw = spec.rw;
    let out = run(rw.p, fs.profile().net.clone(), |comm| {
        if let Some(s) = &sink {
            comm.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
        }
        let rank = comm.rank();
        let own = rw.owner_range(rank);
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
            LockGranularity::Exact,
        )))
        .unwrap();
        file.set_io_path(IoPath::Cached);
        comm.barrier();
        let start = comm.clock().now();
        let mut anomalies = 0u64;
        for round in 0..rw.rounds {
            let data = vec![rw.stamp(rank, round); rw.block as usize];
            file.write_at(own.start, &data)
                .unwrap_or_else(|e| panic!("{name}: rank {rank} round {round} write: {e}"));
            comm.barrier();
            let mut buf = vec![0u8; rw.block as usize];
            for _ in 0..rw.rereads {
                file.read_at(own.start, &mut buf)
                    .unwrap_or_else(|e| panic!("{name}: rank {rank} round {round} read: {e}"));
                if let Err(a) = spec.verify_read(rank, round, &buf) {
                    eprintln!("{name}: rank {rank} round {round}: {a}");
                    anomalies += 1;
                }
            }
            comm.barrier();
        }
        let end = comm.clock().now();
        let close = file.close().unwrap();
        (start, end, close.stats, anomalies)
    });
    let start = out.iter().map(|(s, _, _, _)| *s).min().unwrap_or(0);
    let end = out.iter().map(|(_, e, _, _)| *e).max().unwrap_or(0);
    let mut res = RunResult {
        makespan_ns: end - start,
        anomalies: 0,
        retries: 0,
        journal_replays: 0,
        torn_discarded: 0,
        faults: fs.fault_stats(),
        latency: fs.latency_snapshot(),
        snap: fs.snapshot(name).expect("file written"),
    };
    for (_, _, s, anomalies) in &out {
        res.anomalies += anomalies;
        res.retries += s.retries;
        res.journal_replays += s.journal_replays;
        res.torn_discarded += s.torn_records_discarded;
    }
    assert_eq!(
        res.anomalies, 0,
        "{name}: a verification read was stale, torn or corrupt"
    );
    assert_eq!(
        res.snap,
        rw.expected_final(),
        "{name}: recovered contents differ from the fault-free model"
    );
    spec.verify_snapshot(&res.snap)
        .unwrap_or_else(|(rank, a)| panic!("{name}: rank {rank} block: {a}"));
    res
}

fn json_run(r: &RunResult) -> String {
    let f = &r.faults;
    format!(
        "{{\"makespan_ns\": {}, \"anomalies\": {}, \"retries\": {}, \"rejections\": {}, \
         \"server_crashes\": {}, \"records_torn\": {}, \"journal_replays\": {}, \
         \"replayed_records\": {}, \"replayed_bytes\": {}, \"torn_records_discarded\": {}, \
         \"revocations_dropped\": {}, \"revocations_delayed\": {}, \"faults_fired\": {}, \
         \"grant_wait\": {}, \"server_service\": {}}}",
        r.makespan_ns,
        r.anomalies,
        r.retries,
        f.rejections,
        f.server_crashes,
        f.records_torn,
        f.journal_replays,
        f.replayed_records,
        f.replayed_bytes,
        f.torn_records_discarded,
        f.revocations_dropped,
        f.revocations_delayed,
        f.faults_injected,
        json_latency(&r.latency.grant_wait),
        json_latency(&r.latency.server_service),
    )
}

fn main() {
    let cfg = parse_args();
    println!(
        "recovery bench: crash-recovery checkpoint rounds, {} B blocks x {} rounds x {} \
         rereads{}",
        cfg.block,
        cfg.rounds,
        cfg.rereads,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>4} {:>8} {:>14} {:>8} {:>8} {:>9} {:>8} {:>12} {:>14}",
        "P",
        "faults",
        "makespan_ns",
        "retries",
        "crashes",
        "torn",
        "replays",
        "grant_p99",
        "slowdown"
    );

    // --- No-fault identity: FaultPlan::none() vs a plain FileSystem.
    let ident_spec = CrashRecovery::new(cfg.procs[0], cfg.block, cfg.rounds, cfg.rereads, 1, 0)
        .expect("valid geometry");
    let with_plan = run_plan(ident_spec, FaultPlan::none(), "rec-ident-plan", None);
    let baseline = {
        // Same workload on FileSystem::new — byte- and vtime-identical.
        let rw = ident_spec.rw;
        let fs = FileSystem::new(profile(rw.block));
        let out = run(rw.p, fs.profile().net.clone(), |comm| {
            let rank = comm.rank();
            let own = rw.owner_range(rank);
            let mut file =
                MpiFile::open(&comm, &fs, "rec-ident-base", OpenMode::ReadWrite).unwrap();
            file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(
                LockGranularity::Exact,
            )))
            .unwrap();
            file.set_io_path(IoPath::Cached);
            comm.barrier();
            let start = comm.clock().now();
            for round in 0..rw.rounds {
                let data = vec![rw.stamp(rank, round); rw.block as usize];
                file.write_at(own.start, &data).unwrap();
                comm.barrier();
                let mut buf = vec![0u8; rw.block as usize];
                for _ in 0..rw.rereads {
                    file.read_at(own.start, &mut buf).unwrap();
                }
                comm.barrier();
            }
            let end = comm.clock().now();
            file.close().unwrap();
            (start, end)
        });
        let start = out.iter().map(|(s, _)| *s).min().unwrap();
        let end = out.iter().map(|(_, e)| *e).max().unwrap();
        (end - start, fs.snapshot("rec-ident-base").unwrap())
    };
    let identical = with_plan.snap == baseline.1 && with_plan.makespan_ns == baseline.0;
    assert!(
        identical,
        "a FaultPlan::none() run must be byte- and vtime-identical to a fault-free file \
         system (makespan {} vs {})",
        with_plan.makespan_ns, baseline.0
    );
    println!(
        "no-fault identity: FaultPlan::none() == fault-free (makespan {} ns, {} B)",
        baseline.0,
        baseline.1.len()
    );

    // --- Fault-rate sweep: seeded schedules at increasing fault counts.
    let servers = profile(cfg.block).sim_servers;
    type Point = (usize, usize, RunResult, f64);
    let mut points: Vec<Point> = Vec::new();
    for &p in &cfg.procs {
        let mut clean_makespan = 0;
        for &faults in &cfg.fault_rates {
            let spec = CrashRecovery::new(
                p,
                cfg.block,
                cfg.rounds,
                cfg.rereads,
                0xA70 + p as u64,
                faults,
            )
            .expect("valid geometry");
            let plan = FaultPlan::seeded(spec.seed, servers, p, spec.faults);
            let name = format!("rec-{p}-f{faults}");
            let r = run_plan(spec, plan, &name, None);
            if faults == 0 {
                clean_makespan = r.makespan_ns;
            }
            let slowdown = r.makespan_ns as f64 / clean_makespan.max(1) as f64;
            println!(
                "{:>4} {:>8} {:>14} {:>8} {:>8} {:>9} {:>8} {:>12} {:>13.2}x",
                p,
                faults,
                r.makespan_ns,
                r.retries,
                r.faults.server_crashes,
                r.faults.records_torn,
                r.faults.journal_replays,
                r.latency.grant_wait.p99(),
                slowdown
            );
            points.push((p, faults, r, slowdown));
        }
    }

    // --- Acceptance: mid-flush server crash (torn journal append) at the
    // largest P. The first write-behind flush touching server 0 tears its
    // intent record and takes the server down; the retrying flush drives
    // restart + replay, which must discard the torn record and re-land the
    // bytes — with every later verification read still clean.
    let p_acc = *cfg.procs.last().unwrap();
    let acc_spec = CrashRecovery::new(p_acc, cfg.block, cfg.rounds, cfg.rereads, 0, 1)
        .expect("valid geometry");
    let acc_plan = FaultPlan::none().with(
        FaultSite::JournalAppend { server: 0 },
        1,
        FaultAction::TearRecord {
            restart: RestartPolicy::Rejections(2),
        },
    );
    let trace_sink = cfg.trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    let acc = run_plan(
        acc_spec,
        acc_plan,
        &format!("rec-acc-{p_acc}"),
        trace_sink.as_ref(),
    );
    let acc_pass = acc.anomalies == 0
        && acc.faults.journal_replays >= 1
        && acc.faults.torn_records_discarded >= 1
        && acc.faults.records_torn >= 1;
    println!(
        "acceptance (P={p_acc}, mid-flush torn append on server 0): replays={} \
         torn_discarded={} anomalies={} -> {}",
        acc.faults.journal_replays,
        acc.faults.torn_records_discarded,
        acc.anomalies,
        if acc_pass { "pass" } else { "FAIL" }
    );

    if let (Some(path), Some(sink)) = (&cfg.trace, &trace_sink) {
        std::fs::write(path, sink.export_chrome()).expect("write Chrome trace JSON");
        println!(
            "wrote {} ({} events) — load it at https://ui.perfetto.dev",
            path.display(),
            sink.len()
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"recovery\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"CrashRecovery checkpoint-then-reread rounds under deterministic \
         fault schedules on the lock-driven cached path; every verification read classified \
         clean/stale/torn/corrupt by the workload checker (any anomaly fails the run)\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"block\": {}, \"rounds\": {}, \"rereads\": {}, \
         \"write_behind_limit\": {}, \"smoke\": {}}},",
        cfg.block,
        cfg.rounds,
        cfg.rereads,
        profile(cfg.block).cache.write_behind_limit,
        cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"fault_model\": \"seeded FaultPlan: server crashes (restart after 1-4 rejected \
         requests), torn journal appends, dropped/delayed revocations; retries pay \
         exponential vtime backoff (retry_backoff_ns << attempt)\","
    );
    let _ = writeln!(
        json,
        "  \"no_fault_identity\": {{\"byte_identical\": {identical}, \"makespan_ns\": {}}},",
        baseline.0
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (p, faults, r, slowdown)) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"p\": {p}, \"faults_scheduled\": {faults}, \"slowdown\": {slowdown:.3}, \
             \"run\": {}}}{}",
            json_run(r),
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"p\": {p_acc}, \"scenario\": \"mid-flush TearRecord on server 0 \
         (power-cut during revocation-journal append), restart after 2 rejections\", \
         \"journal_replays\": {}, \"torn_records_discarded\": {}, \"replayed_records\": {}, \
         \"replayed_bytes\": {}, \"stale_or_torn_reads\": {}, \"byte_identical_no_fault\": \
         {identical}, \"run\": {}, \"pass\": {acc_pass}}}",
        acc.faults.journal_replays,
        acc.faults.torn_records_discarded,
        acc.faults.replayed_records,
        acc.faults.replayed_bytes,
        acc.anomalies,
        json_run(&acc)
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&cfg.out, &json).expect("write BENCH_recovery.json");
    println!("wrote {}", cfg.out.display());
    assert!(
        acc_pass,
        "acceptance: the mid-flush crash run must replay the journal (got {}), discard the \
         torn record (got {}), and show zero stale/torn reads (got {})",
        acc.faults.journal_replays, acc.faults.torn_records_discarded, acc.anomalies
    );
}
