//! Interval-set algebra costs: these operations run on every view exchange
//! (overlap matrix) and every rank-ordering view recalculation, with one
//! run per file-view row — so thousands of runs at the paper's scale.

use atomio_interval::{ByteRange, IntervalSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// A column-wise-like set: `runs` runs of `len` bytes spaced `stride` apart.
fn strided(runs: u64, len: u64, stride: u64, offset: u64) -> IntervalSet {
    IntervalSet::from_extents((0..runs).map(|i| (offset + i * stride, len)))
}

fn bench_binary_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_ops");
    for runs in [16u64, 256, 4096] {
        let a = strided(runs, 512, 2048, 0);
        let b = strided(runs, 512, 2048, 256); // half-overlapping
        g.throughput(Throughput::Elements(runs));
        g.bench_with_input(BenchmarkId::new("union", runs), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| a.union(b))
        });
        g.bench_with_input(
            BenchmarkId::new("intersect", runs),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| a.intersect(b)),
        );
        g.bench_with_input(
            BenchmarkId::new("subtract", runs),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| a.subtract(b)),
        );
        g.bench_with_input(
            BenchmarkId::new("overlaps", runs),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| a.overlaps(b)),
        );
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_construction");
    for runs in [16u64, 256, 4096] {
        g.throughput(Throughput::Elements(runs));
        // Sorted, disjoint input: the common case from flattened views.
        g.bench_with_input(
            BenchmarkId::new("from_sorted", runs),
            &runs,
            |bch, &runs| bch.iter(|| strided(runs, 512, 2048, 0)),
        );
        // Reversed input exercises the sort path.
        g.bench_with_input(
            BenchmarkId::new("from_reversed", runs),
            &runs,
            |bch, &runs| {
                bch.iter(|| IntervalSet::from_extents((0..runs).rev().map(|i| (i * 2048, 512u64))))
            },
        );
    }
    g.finish();
}

fn bench_point_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_queries");
    let s = strided(4096, 512, 2048, 0);
    g.bench_function("contains_hit", |b| b.iter(|| s.contains(2048 * 2000 + 100)));
    g.bench_function("contains_miss", |b| {
        b.iter(|| s.contains(2048 * 2000 + 1000))
    });
    g.bench_function("overlaps_range", |b| {
        b.iter(|| s.overlaps_range(&ByteRange::new(2048 * 3000, 2048 * 3000 + 64)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_binary_ops, bench_construction, bench_point_queries
}
criterion_main!(benches);
