//! List-locking bench: bounding-span vs exact-footprint vs sharded-exact
//! byte-range locking on **disjoint interleaved** strided writers — the
//! 4096×4096 column-wise geometry with zero overlapped columns, expressed
//! as [`IndependentStrided::disjoint_interleaved`]: rank `r` owns the
//! `r`-th slot of every row, so every pair of bounding spans overlaps
//! (span locking serializes all P writers) while no two footprints share
//! a byte (exact list locking admits full parallelism).
//!
//! Three granularity/architecture points per P ∈ {4, 16, 64}:
//!
//! * **span** — `Strategy::FileLocking(Span)` on the central manager: the
//!   paper's §3.2 baseline, one conservative range each;
//! * **exact** — `Strategy::FileLocking(Exact)` on the central manager:
//!   one atomic multi-range list grant of the compressed footprint;
//! * **sharded** — exact grants on the `ShardedLockManager`
//!   (per-server extent-lock domains, parallel max-over-shards trips).
//!
//! The platform stripes **column-aligned** (stripe unit = run length,
//! one I/O server per writer column) and is costed **latency-dominated**
//! (RPC latency ≫ per-request server occupancy), so each rank's request
//! stream is independently overlappable. Under the earlier shared-stripe
//! bandwidth-bound costing the makespan was server-capacity-bound —
//! total bytes over aggregate server bandwidth floored every mode
//! equally, and span's serialization surfaced only in `grant_wait_ns`.
//! Now exact-footprint grants run all P streams concurrently (overlapped
//! I/O) while span locking still runs them end to end, so the
//! granularity win shows up in the makespan itself — and because no two
//! ranks share a server horizon, the timing stays deterministic under
//! real-thread racing.
//!
//! Emits `BENCH_locking.json`. Acceptance (full geometry, P = 16): exact
//! and sharded-exact locking must show **≥ 5× fewer serialized grant
//! round trips** *and* **≥ 3× lower makespan** than bounding-span
//! locking, with byte-identical file contents across all three modes.
//!
//! Run with `cargo bench -p atomio-bench --bench locking`; pass
//! `-- --smoke` for the quick CI geometry and `-- --out <path>` to choose
//! where the JSON lands (default: the workspace root).

use std::fmt::Write as _;
use std::path::PathBuf;

use atomio_bench::json_latency;
use atomio_core::verify::check_mpi_atomicity;
use atomio_core::{Atomicity, LockGranularity, MpiFile, OpenMode, Strategy};
use atomio_msg::run;
use atomio_pfs::{FileSystem, LatencySnapshot, PlatformProfile};
use atomio_vtime::{LinkCost, ServeCost, VNanos};
use atomio_workloads::{pattern, IndependentStrided};

struct Config {
    rows: u64,
    row_bytes: u64,
    procs: Vec<usize>,
    out: PathBuf,
    smoke: bool,
}

fn parse_args() -> Config {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().map(PathBuf::from),
            // `cargo bench` forwards harness flags; ignore the rest.
            _ => {}
        }
    }
    let out = out.unwrap_or_else(|| {
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("BENCH_locking.json");
        p
    });
    if smoke {
        Config {
            rows: 128,
            row_bytes: 256,
            procs: vec![4, 16],
            out,
            smoke,
        }
    } else {
        Config {
            rows: 4096,
            row_bytes: 4096,
            procs: vec![4, 16, 64],
            out,
            smoke,
        }
    }
}

/// One granularity/architecture point of the comparison.
#[derive(Debug, Clone, Copy)]
struct Mode {
    key: &'static str,
    granularity: LockGranularity,
    sharded: bool,
}

const MODES: [Mode; 3] = [
    Mode {
        key: "span",
        granularity: LockGranularity::Span,
        sharded: false,
    },
    Mode {
        key: "exact",
        granularity: LockGranularity::Exact,
        sharded: false,
    },
    Mode {
        key: "sharded",
        granularity: LockGranularity::Exact,
        sharded: true,
    },
];

/// Aggregate counters of one whole run (all ranks).
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    makespan_ns: VNanos,
    lock_acquires: u64,
    lock_ranges: u64,
    serialized_grants: u64,
    shard_trips: u64,
    /// Total virtual time all ranks spent waiting for their grants — the
    /// pure lock-serialization time, independent of the (server-bound,
    /// identical across modes) data movement.
    grant_wait_ns: u64,
}

fn json_totals(t: &Totals) -> String {
    format!(
        "{{\"makespan_ns\": {}, \"lock_acquires\": {}, \"lock_ranges\": {}, \
         \"serialized_grants\": {}, \"shard_trips\": {}, \"grant_wait_ns\": {}}}",
        t.makespan_ns,
        t.lock_acquires,
        t.lock_ranges,
        t.serialized_grants,
        t.shard_trips,
        t.grant_wait_ns
    )
}

/// Run the disjoint interleaved collective write under one mode; returns
/// the totals, the latency histograms, and the final file bytes.
/// The comparison platform: the test profile with **column-aligned
/// declustered striping** (stripe unit = run length, one I/O server per
/// writer column) and RPC costs re-balanced so one synchronous request is
/// dominated by the client-paid link latency, not by the occupancy it
/// deposits on the server horizon. Each rank's request stream then lives
/// on its own server and is independently overlappable: P streams granted
/// exactly run concurrently, while span locking still runs them end to
/// end — and because no two ranks ever share a server horizon, the
/// simulated timing is independent of real thread scheduling.
fn bench_profile(spec: &IndependentStrided, sharded: bool) -> PlatformProfile {
    let mut p = PlatformProfile::fast_test();
    if sharded {
        p = p.with_sharded_locks();
    }
    p.sim_servers = spec.p;
    p.stripe_unit = spec.run_len;
    p.client_link = LinkCost::new(40_000, 4.0e9);
    p.serve = ServeCost::new(500, 4.0e9);
    p
}

fn run_mode(
    spec: IndependentStrided,
    mode: Mode,
    name: &str,
) -> (Totals, LatencySnapshot, Vec<u8>) {
    let fs = FileSystem::new(bench_profile(&spec, mode.sharded));
    let out = run(spec.p, fs.profile().net.clone(), |comm| {
        let buf = spec.fill(comm.rank(), pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, name, OpenMode::ReadWrite).unwrap();
        file.set_view(spec.disp(comm.rank()), spec.filetype())
            .unwrap();
        file.set_atomicity(Atomicity::Atomic(Strategy::FileLocking(mode.granularity)))
            .unwrap();
        comm.barrier();
        let start = comm.clock().now();
        file.write_at_all(0, &buf).unwrap();
        let end = comm.clock().now();
        let close = file.close().unwrap();
        (start, end, close.stats)
    });
    let start = out.iter().map(|(s, _, _)| *s).min().unwrap_or(0);
    let end = out.iter().map(|(_, e, _)| *e).max().unwrap_or(0);
    let mut t = Totals {
        makespan_ns: end - start,
        ..Totals::default()
    };
    for (_, _, s) in &out {
        t.lock_acquires += s.lock_acquires;
        t.lock_ranges += s.lock_ranges;
        t.serialized_grants += s.lock_serialized_grants;
        t.shard_trips += s.lock_shard_trips;
        t.grant_wait_ns += s.lock_wait_ns;
    }
    let latency = fs.latency_snapshot();
    let snap = fs.snapshot(name).expect("file written");
    let views = spec.all_views();
    let rep = check_mpi_atomicity(&snap, &views, &pattern::rank_stamps(spec.p));
    assert!(rep.is_atomic(), "{name}: not MPI-atomic: {rep:?}");
    (t, latency, snap)
}

fn main() {
    let cfg = parse_args();
    println!(
        "locking bench: disjoint interleaved writers, {} runs x {} B rows{}",
        cfg.rows,
        cfg.row_bytes,
        if cfg.smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:>4} {:>8}  {:>14} {:>8} {:>10} {:>12} {:>12} {:>16} {:>10} {:>10}",
        "P",
        "mode",
        "makespan_ns",
        "locks",
        "ranges",
        "serialized",
        "shard_trips",
        "grant_wait_ns",
        "g_p50_ns",
        "g_p99_ns"
    );

    type Panel = (usize, Vec<(Mode, Totals, LatencySnapshot)>);
    let mut panels: Vec<Panel> = Vec::new();
    for &p in &cfg.procs {
        let run_len = cfg.row_bytes / p as u64;
        let spec =
            IndependentStrided::disjoint_interleaved(p, cfg.rows, run_len).expect("valid geometry");
        let mut row = Vec::new();
        let mut reference: Option<Vec<u8>> = None;
        for mode in MODES {
            let name = format!("lk-{p}-{}", mode.key);
            let (t, lat, snap) = run_mode(spec, mode, &name);
            // Disjoint writers: all three granularities must produce the
            // same bytes — the bench doubles as an equivalence check.
            match &reference {
                Some(r) => assert_eq!(
                    r, &snap,
                    "P={p}: {} contents differ from span locking",
                    mode.key
                ),
                None => reference = Some(snap),
            }
            println!(
                "{:>4} {:>8}  {:>14} {:>8} {:>10} {:>12} {:>12} {:>16} {:>10} {:>10}",
                p,
                mode.key,
                t.makespan_ns,
                t.lock_acquires,
                t.lock_ranges,
                t.serialized_grants,
                t.shard_trips,
                t.grant_wait_ns,
                lat.grant_wait.p50(),
                lat.grant_wait.p99()
            );
            row.push((mode, t, lat));
        }
        panels.push((p, row));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"locking\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"disjoint interleaved strided writers (colwise 4096x4096 with zero \
         overlapped columns): rank r owns slot r of every row; collective atomic \
         MPI_File_write_at_all under Strategy::FileLocking\","
    );
    let _ = writeln!(
        json,
        "  \"geometry\": {{\"rows\": {}, \"row_bytes\": {}, \"smoke\": {}}},",
        cfg.rows, cfg.row_bytes, cfg.smoke
    );
    let _ = writeln!(
        json,
        "  \"modes\": {{\"span\": \"bounding-span lock, central manager\", \"exact\": \
         \"exact-footprint atomic list grant, central manager\", \"sharded\": \
         \"exact list grant over per-server sharded lock domains\"}},",
    );
    let _ = writeln!(
        json,
        "  \"note\": \"striping is column-aligned (stripe unit = run length, one I/O server \
         per writer column) and the costing latency-dominated (RPC latency >> per-request \
         server occupancy), so each rank's request stream is independently overlappable: \
         exact-footprint grants run all P streams concurrently (overlapped I/O) while span \
         locking runs them end to end, and the serialization the granularity axis removes \
         shows up in the makespan as well as in serialized_grants and grant_wait_ns\","
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (p, row)) in panels.iter().enumerate() {
        let span = row.iter().find(|(m, _, _)| m.key == "span").unwrap().1;
        let _ = writeln!(json, "    {{\"p\": {p},");
        for (mode, t, lat) in row {
            let reduction = span.serialized_grants as f64 / t.serialized_grants.max(1) as f64;
            let wait_reduction = span.grant_wait_ns as f64 / t.grant_wait_ns.max(1) as f64;
            let speedup = span.makespan_ns as f64 / t.makespan_ns.max(1) as f64;
            let _ = writeln!(
                json,
                "     \"{}\": {{\"totals\": {}, \"serialized_grant_reduction\": {:.2}, \
                 \"grant_wait_reduction\": {:.2}, \"makespan_speedup\": {:.2}, \
                 \"latency\": {{\"grant_wait\": {}, \"server_service\": {}}}}}{}",
                mode.key,
                json_totals(t),
                reduction,
                wait_reduction,
                speedup,
                json_latency(&lat.grant_wait),
                json_latency(&lat.server_service),
                if mode.key == "sharded" { "" } else { "," }
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < panels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // Acceptance: P = 16 at full geometry — exact and sharded must each
    // cut serialized grant round trips >= 5x vs bounding-span locking
    // AND beat its makespan >= 3x (the overlapped-I/O win itself).
    let acceptance = panels.iter().find(|(p, _)| *p == 16 && !cfg.smoke);
    match acceptance {
        Some((p, row)) => {
            let span = row.iter().find(|(m, _, _)| m.key == "span").unwrap().1;
            let fine = row.iter().filter(|(m, _, _)| m.key != "span");
            let worst = fine
                .clone()
                .map(|(_, t, _)| span.serialized_grants as f64 / t.serialized_grants.max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            let worst_speedup = fine
                .map(|(_, t, _)| span.makespan_ns as f64 / t.makespan_ns.max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"p\": {p}, \"metric\": \"span / exact serialized grant \
                 round trips and span / exact makespan (each min over exact and sharded)\", \
                 \"reduction\": {:.2}, \"threshold\": 5.0, \"makespan_speedup\": {:.2}, \
                 \"speedup_threshold\": 3.0, \"byte_identical\": true, \"pass\": {}}}",
                worst,
                worst_speedup,
                worst >= 5.0 && worst_speedup >= 3.0
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_locking.json");
            println!("wrote {}", cfg.out.display());
            assert!(
                worst >= 5.0,
                "acceptance: exact/sharded locking must cut serialized grant round trips \
                 >= 5x vs span locking at P=16, got {worst:.2}x"
            );
            assert!(
                worst_speedup >= 3.0,
                "acceptance: exact/sharded locking must beat span locking's makespan >= 3x \
                 at P=16 on the latency-dominated platform, got {worst_speedup:.2}x"
            );
        }
        None => {
            let _ = writeln!(
                json,
                "  \"acceptance\": {{\"note\": \"smoke geometry; run without --smoke for the \
                 P=16 acceptance point\"}}"
            );
            let _ = writeln!(json, "}}");
            std::fs::write(&cfg.out, &json).expect("write BENCH_locking.json");
            println!("wrote {}", cfg.out.display());
        }
    }
}
