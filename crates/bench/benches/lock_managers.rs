//! Ablation: centralized byte-range lock manager (NFS/XFS) vs distributed
//! token manager (GPFS) — the §3.2 design comparison. Measures both the
//! host-time cost of the data structures and the *virtual-time* cost of the
//! protocols (token reuse vs per-request round trips).

use std::time::Duration;

use atomio_interval::ByteRange;
use atomio_pfs::{CentralLockManager, LockMode, TokenManager};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const GRANT_NS: u64 = 700_000;
const REVOKE_NS: u64 = 5_000_000;

fn bench_same_client_reacquire(c: &mut Criterion) {
    // One client re-locking its own range repeatedly: GPFS tokens make
    // this (virtually) free, the central manager pays a round trip each
    // time. Virtual cost mapped into criterion time via iter_custom.
    let mut g = c.benchmark_group("reacquire_same_range_vtime");
    g.bench_function("central", |b| {
        b.iter_custom(|iters| {
            let m = CentralLockManager::new(GRANT_NS);
            let mut now = 0u64;
            for i in 0..iters {
                let (id, t) = m.acquire(0, ByteRange::new(0, 1 << 20), LockMode::Exclusive, now);
                m.release(id, t);
                now = t;
                let _ = i;
            }
            Duration::from_nanos(now + (iters & 7))
        })
    });
    g.bench_function("distributed_token", |b| {
        b.iter_custom(|iters| {
            let m = TokenManager::new(GRANT_NS, REVOKE_NS);
            let mut now = 0u64;
            for _ in 0..iters {
                let (id, t, _) = m.acquire(0, ByteRange::new(0, 1 << 20), LockMode::Exclusive, now);
                m.release(0, id, t);
                now = t;
            }
            Duration::from_nanos(now + (iters & 7))
        })
    });
    g.finish();
}

fn bench_ping_pong(c: &mut Criterion) {
    // Two clients alternating on an overlapped range: token revocation
    // makes GPFS *worse* than the central manager here — exactly the
    // paper's "concurrent writes to overlapped data must still be
    // sequential" caveat.
    let mut g = c.benchmark_group("overlap_ping_pong_vtime");
    g.bench_function("central", |b| {
        b.iter_custom(|iters| {
            let m = CentralLockManager::new(GRANT_NS);
            let mut now = 0u64;
            for i in 0..iters {
                let owner = (i % 2) as usize;
                let (id, t) =
                    m.acquire(owner, ByteRange::new(0, 1 << 20), LockMode::Exclusive, now);
                m.release(id, t);
                now = t;
            }
            Duration::from_nanos(now + (iters & 7))
        })
    });
    g.bench_function("distributed_token", |b| {
        b.iter_custom(|iters| {
            let m = TokenManager::new(GRANT_NS, REVOKE_NS);
            let mut now = 0u64;
            for i in 0..iters {
                let owner = (i % 2) as usize;
                let (id, t, _) =
                    m.acquire(owner, ByteRange::new(0, 1 << 20), LockMode::Exclusive, now);
                m.release(owner, id, t);
                now = t;
            }
            Duration::from_nanos(now + (iters & 7))
        })
    });
    g.finish();
}

fn bench_disjoint_host_cost(c: &mut Criterion) {
    // Host-time cost of the lock table itself with many disjoint ranges.
    let mut g = c.benchmark_group("disjoint_ranges_host");
    for clients in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("central", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let m = CentralLockManager::new(0);
                    for k in 0..clients as u64 {
                        let (id, t) = m.acquire(
                            k as usize,
                            ByteRange::new(k * 1000, k * 1000 + 999),
                            LockMode::Exclusive,
                            0,
                        );
                        m.release(id, t);
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("distributed_token", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let m = TokenManager::new(0, 0);
                    for k in 0..clients as u64 {
                        let (id, t, _) = m.acquire(
                            k as usize,
                            ByteRange::new(k * 1000, k * 1000 + 999),
                            LockMode::Exclusive,
                            0,
                        );
                        m.release(k as usize, id, t);
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_same_client_reacquire, bench_ping_pong, bench_disjoint_host_cost
}
criterion_main!(benches);
