//! Derived-datatype engine costs: flattening subarray filetypes and mapping
//! logical requests through file views — the per-call overhead every MPI-IO
//! operation pays before touching the file system.

use atomio_dtype::{ArrayOrder, Datatype, FileView};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn colwise_type(m: u64, n: u64, w: u64) -> std::sync::Arc<Datatype> {
    Datatype::subarray(
        &[m, n],
        &[m, w],
        &[0, n / 4],
        ArrayOrder::C,
        Datatype::byte(),
    )
    .unwrap()
}

fn bench_flatten(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_flatten");
    for m in [256u64, 1024, 4096] {
        let t = colwise_type(m, 32768, 2048);
        g.throughput(Throughput::Elements(m));
        g.bench_with_input(BenchmarkId::from_parameter(m), &t, |b, t| {
            b.iter(|| t.flatten())
        });
    }
    g.finish();
}

fn bench_view_segments(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_segments");
    for m in [256u64, 1024, 4096] {
        let w = 2048u64;
        let view = FileView::new(0, colwise_type(m, 32768, w)).unwrap();
        let len = view.tile_size();
        g.throughput(Throughput::Bytes(len));
        g.bench_with_input(BenchmarkId::new("full_tile", m), &view, |b, v| {
            b.iter(|| v.segments(0, len))
        });
        g.bench_with_input(BenchmarkId::new("file_ranges", m), &view, |b, v| {
            b.iter(|| v.file_ranges(0, len))
        });
    }
    g.finish();
}

fn bench_view_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_construction");
    for m in [256u64, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| FileView::new(0, colwise_type(m, 32768, 2048)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_flatten, bench_view_segments, bench_view_construction
}
criterion_main!(benches);
