//! Validate checked-in and freshly-emitted JSON artifacts.
//!
//! ```text
//! tracecheck [--chrome <file>]... [--json <file>]...
//! ```
//!
//! Every file must parse as JSON ([`atomio_trace::validate_json`] — the
//! same hand-rolled parser the exporter is tested against, so CI needs no
//! external JSON tooling); files passed with `--chrome` must additionally
//! satisfy the Chrome-trace-event shape checks
//! ([`atomio_trace::validate_chrome_trace`]: a `traceEvents` array whose
//! entries carry `ph`/`pid`/`tid`/`ts`, with `dur` on every `X` event) that
//! Perfetto relies on.
//!
//! Exits non-zero after reporting the first failure per file; CI runs it
//! over the emitted bench trace and all `BENCH_*.json` artifacts.

use atomio_trace::{validate_chrome_trace, validate_json};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut checked = 0usize;
    let mut failures = 0usize;
    let mut check = |path: &str, chrome: bool| {
        checked += 1;
        let kind = if chrome { "chrome-trace" } else { "json" };
        let data = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL {path}: unreadable: {e}");
                failures += 1;
                return;
            }
        };
        let result = if chrome {
            validate_chrome_trace(&data)
        } else {
            validate_json(&data)
        };
        match result {
            Ok(()) => println!("OK   {path} ({kind}, {} bytes)", data.len()),
            Err(e) => {
                eprintln!("FAIL {path}: invalid {kind}: {e}");
                failures += 1;
            }
        }
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => match args.next() {
                Some(p) => check(&p, true),
                None => {
                    eprintln!("usage: tracecheck [--chrome <file>]... [--json <file>]...");
                    std::process::exit(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => check(&p, false),
                None => {
                    eprintln!("usage: tracecheck [--chrome <file>]... [--json <file>]...");
                    std::process::exit(2);
                }
            },
            // Bare paths are plain-JSON checks.
            p => check(p, false),
        }
    }
    if checked == 0 {
        eprintln!("usage: tracecheck [--chrome <file>]... [--json <file>]...");
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!("{failures}/{checked} artifacts failed validation");
        std::process::exit(1);
    }
    println!("{checked} artifacts valid");
}
