//! Validate checked-in and freshly-emitted JSON artifacts.
//!
//! ```text
//! tracecheck [--chrome <file>]... [--json <file>]... [--hb <file>]...
//! ```
//!
//! Every file must parse as JSON ([`atomio_trace::validate_json`] — the
//! same hand-rolled parser the exporter is tested against, so CI needs no
//! external JSON tooling); files passed with `--chrome` must additionally
//! satisfy the Chrome-trace-event shape checks
//! ([`atomio_trace::validate_chrome_trace`]: a `traceEvents` array whose
//! entries carry `ph`/`pid`/`tid`/`ts`, with `dur` on every `X` event) that
//! Perfetto relies on.
//!
//! Files passed with `--hb` run the whole chrome-trace pipeline *plus*
//! the `atomio-check` happens-before race detector: the trace must carry
//! a schedule in which every conflicting access pair is ordered by
//! grant-release, revocation-flush, or collective edges. Use it on traces
//! of schedules that are supposed to be coherent — a finding is a bug in
//! either the schedule or the instrumentation.
//!
//! Exits non-zero after reporting the first failure per file; CI runs it
//! over the emitted bench trace, all `BENCH_*.json` artifacts, and the
//! golden `small_trace.json` (happens-before-checked).

use atomio_check::check_chrome_json;
use atomio_trace::{validate_chrome_trace, validate_json};

const USAGE: &str = "usage: tracecheck [--chrome <file>]... [--json <file>]... [--hb <file>]...";

enum Mode {
    Json,
    Chrome,
    Hb,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut checked = 0usize;
    let mut failures = 0usize;
    let mut check = |path: &str, mode: Mode| {
        checked += 1;
        let kind = match mode {
            Mode::Chrome => "chrome-trace",
            Mode::Hb => "chrome-trace+hb",
            Mode::Json => "json",
        };
        let data = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL {path}: unreadable: {e}");
                failures += 1;
                return;
            }
        };
        let result = match mode {
            Mode::Chrome => validate_chrome_trace(&data),
            Mode::Json => validate_json(&data),
            Mode::Hb => validate_chrome_trace(&data).and_then(|()| {
                let report = check_chrome_json(&data)?;
                if report.findings.is_empty() {
                    Ok(())
                } else {
                    Err(format!("{report}"))
                }
            }),
        };
        match result {
            Ok(()) => println!("OK   {path} ({kind}, {} bytes)", data.len()),
            Err(e) => {
                eprintln!("FAIL {path}: invalid {kind}: {e}");
                failures += 1;
            }
        }
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => match args.next() {
                Some(p) => check(&p, Mode::Chrome),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--hb" => match args.next() {
                Some(p) => check(&p, Mode::Hb),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => check(&p, Mode::Json),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            // Bare paths are plain-JSON checks.
            p => check(p, Mode::Json),
        }
    }
    if checked == 0 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if failures > 0 {
        eprintln!("{failures}/{checked} artifacts failed validation");
        std::process::exit(1);
    }
    println!("{checked} artifacts valid");
}
