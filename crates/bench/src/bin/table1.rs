//! Regenerate **Table 1** of the paper: the system configurations of the
//! three platforms, plus the simulation cost constants standing in for the
//! real hardware (the substitution documented in DESIGN.md).

use atomio_pfs::{LockKind, PlatformProfile};

fn main() {
    let platforms = PlatformProfile::paper_platforms();

    println!("Table 1: System configurations (paper values)");
    println!("{:-<78}", "");
    print!("{:<16}", "");
    for p in &platforms {
        print!("{:<21}", p.name);
    }
    println!();
    println!("{:-<78}", "");

    type Getter = Box<dyn Fn(&PlatformProfile) -> String>;
    let rows: Vec<(&str, Getter)> = vec![
        ("File system", Box::new(|p| p.file_system.to_string())),
        ("CPU type", Box::new(|p| p.cpu.to_string())),
        ("CPU speed", Box::new(|p| format!("{} MHz", p.cpu_mhz))),
        ("Network", Box::new(|p| p.network.to_string())),
        ("I/O servers", Box::new(|p| p.io_servers_display())),
        (
            "Peak I/O bw",
            Box::new(|p| {
                if p.peak_io_mbps >= 1024.0 {
                    format!("{:.1} GB/s", p.peak_io_mbps / 1024.0)
                } else {
                    format!("{:.0} MB/s", p.peak_io_mbps)
                }
            }),
        ),
    ];
    for (name, get) in &rows {
        print!("{name:<16}");
        for p in &platforms {
            print!("{:<21}", get(p));
        }
        println!();
    }

    println!("{:-<78}", "");
    println!("Simulation model (substitution for the real testbeds):");
    for p in &platforms {
        println!(
            "  {:<12} {} servers x {:.1} MB/s (+{} us/op), client link {:.1} MB/s \
             (+{} us), locks: {}",
            p.name,
            p.sim_servers,
            p.serve.bytes_per_sec / 1e6,
            p.serve.per_op_ns / 1000,
            p.client_link.bytes_per_sec / 1e6,
            p.client_link.latency_ns / 1000,
            match p.lock_kind {
                LockKind::None => "none (ENFS)",
                LockKind::Central => "central manager",
                LockKind::Distributed => "distributed tokens (GPFS)",
                LockKind::Sharded => "sharded per-server domains (Lustre)",
                LockKind::ShardedTokens => "sharded domains + tokens",
            }
        );
    }
}
