//! Regenerate **Figure 8** of the paper: I/O bandwidth of the column-wise
//! concurrent-write experiment for three strategies × three platforms ×
//! three array sizes × P ∈ {4, 8, 16}.
//!
//! ```text
//! cargo run --release -p atomio-bench --bin figure8            # paper sizes
//! cargo run --release -p atomio-bench --bin figure8 -- --quick # 1/8 scale
//! ```
//!
//! Bandwidth numbers are *modeled* (virtual time); the goal is the paper's
//! shape — file locking worst and flat, process-rank ordering best and
//! scaling, graph coloring in between, no locking curve on Cplant — not
//! absolute MB/s. A CSV dump and per-panel shape checks are emitted.
//!
//! Pass `--trace <path>` to additionally record the first panel's
//! P = 4 points (every strategy on the first platform and size) as a
//! Chrome-trace timeline: one track per rank, one per I/O server, with
//! the strategies' runs overlaid on a shared virtual-time axis. Load the
//! file at <https://ui.perfetto.dev>.

use std::io::Write as _;
use std::sync::Arc;

use atomio_bench::{
    bar, check_shape, measure_colwise, measure_colwise_traced, strategies_for, Point, CSV_HEADER,
    DEFAULT_R, PAPER_PROCS, PAPER_SIZES,
};
use atomio_core::{IoPath, TwoPhaseConfig};
use atomio_pfs::PlatformProfile;
use atomio_trace::MemorySink;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_sink = trace_path.as_ref().map(|_| Arc::new(MemorySink::new()));

    let sizes: Vec<(u64, u64, &str)> = if quick {
        PAPER_SIZES.iter().map(|&(m, n, l)| (m / 8, n, l)).collect()
    } else {
        PAPER_SIZES.to_vec()
    };

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let csv_path = format!("{out_dir}/figure8.csv");
    let mut csv = std::fs::File::create(&csv_path).expect("create CSV");
    writeln!(csv, "{CSV_HEADER}").unwrap();

    println!("Reproducing Figure 8 (column-wise overlapping writes, R = {DEFAULT_R} columns)");
    println!(
        "{} scale; bandwidth in MiB/s of modeled virtual time\n",
        if quick { "QUICK (M/8)" } else { "paper" }
    );

    let mut all_failures: Vec<String> = Vec::new();
    let mut panels = 0;

    for profile in PlatformProfile::paper_platforms() {
        for &(m, n, label) in &sizes {
            panels += 1;
            println!(
                "── {} ({})   array {m} x {n} ({label}) {}",
                profile.name,
                profile.file_system,
                "─".repeat(20)
            );
            let mut panel_points: Vec<Point> = Vec::new();
            for &p in &PAPER_PROCS {
                for strategy in strategies_for(&profile) {
                    // Trace only the first panel's smallest process count:
                    // one readable timeline instead of 100+ overlaid runs.
                    let sink = trace_sink
                        .as_ref()
                        .filter(|_| panels == 1 && p == PAPER_PROCS[0]);
                    let pt = match sink {
                        Some(sink) => measure_colwise_traced(
                            &profile,
                            m,
                            n,
                            p,
                            DEFAULT_R,
                            Some(strategy),
                            IoPath::Direct,
                            TwoPhaseConfig::default(),
                            sink,
                        ),
                        None => measure_colwise(
                            &profile,
                            m,
                            n,
                            p,
                            DEFAULT_R,
                            Some(strategy),
                            IoPath::Direct,
                        ),
                    };
                    writeln!(csv, "{}", pt.csv_row()).unwrap();
                    panel_points.push(pt);
                }
            }
            let max = panel_points.iter().map(|p| p.mibps).fold(0.0, f64::max);
            for &p in &PAPER_PROCS {
                println!("  P = {p}");
                for pt in panel_points.iter().filter(|pt| pt.p == p) {
                    println!(
                        "    {:<22} {:>8.2}  {}",
                        pt.strategy_label(),
                        pt.mibps,
                        bar(pt.mibps, max, 32)
                    );
                }
            }
            let failures = check_shape(&panel_points);
            if failures.is_empty() {
                println!(
                    "  shape: OK (locking < coloring <= rank-ordering; rank-ordering scales)\n"
                );
            } else {
                for f in &failures {
                    println!("  shape: FAIL {f}");
                }
                println!();
                all_failures.extend(
                    failures
                        .into_iter()
                        .map(|f| format!("{} {label}: {f}", profile.name)),
                );
            }
        }
    }

    if let (Some(path), Some(sink)) = (&trace_path, &trace_sink) {
        std::fs::write(path, sink.export_chrome()).expect("write Chrome trace JSON");
        println!(
            "trace written to {path} ({} events) — load it at https://ui.perfetto.dev",
            sink.len()
        );
    }
    println!("CSV written to {csv_path}");
    if all_failures.is_empty() {
        println!("All {panels} panels match the paper's qualitative shape.");
    } else {
        println!("{} shape violations:", all_failures.len());
        for f in &all_failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
