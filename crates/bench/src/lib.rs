//! Experiment harness shared by the `figure8`/`table1` binaries and the
//! criterion benches.
//!
//! One *experiment point* = one concurrent column-wise write (the paper's
//! §4 workload) on one platform profile with one atomicity strategy,
//! measured in **virtual time** and reported as aggregate MiB/s — the unit
//! of Figure 8's y-axes.

use std::sync::Arc;

use atomio_core::{
    Atomicity, IoPath, LockGranularity, MpiFile, OpenMode, Strategy, TwoPhaseConfig,
};
use atomio_msg::run;
use atomio_pfs::{FileSystem, PlatformProfile};
use atomio_trace::{HistogramSnapshot, MemorySink, TraceSink};
use atomio_vtime::{bandwidth_mibps, VNanos};
use atomio_workloads::{pattern, ColWise};

/// The three array sizes of Figure 8 (M = 4096 rows; element = 1 byte).
pub const PAPER_SIZES: [(u64, u64, &str); 3] = [
    (4096, 8192, "32 MB"),
    (4096, 32768, "128 MB"),
    (4096, 262144, "1 GB"),
];

/// The process counts of Figure 8.
pub const PAPER_PROCS: [usize; 3] = [4, 8, 16];

/// Overlapped columns used by the harness (ghost width; the paper keeps R
/// fixed and small relative to N/P).
pub const DEFAULT_R: u64 = 16;

/// One measured point of a Figure 8 panel.
#[derive(Debug, Clone)]
pub struct Point {
    pub platform: &'static str,
    pub m: u64,
    pub n: u64,
    pub size_label: &'static str,
    pub p: usize,
    pub strategy: Option<Strategy>,
    /// Virtual makespan of the collective write (max end − min start).
    pub makespan: VNanos,
    /// Bytes that reached the file system.
    pub bytes: u64,
    /// Aggregate bandwidth in MiB/s (the Figure 8 metric).
    pub mibps: f64,
}

impl Point {
    pub fn strategy_label(&self) -> &'static str {
        self.strategy.map_or("non-atomic", |s| s.label())
    }

    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:.3}",
            self.platform,
            self.m,
            self.n,
            self.size_label.replace(' ', ""),
            self.p,
            self.strategy_label().replace(' ', "-"),
            self.makespan,
            self.bytes,
            self.mibps
        )
    }
}

pub const CSV_HEADER: &str = "platform,m,n,size,procs,strategy,makespan_ns,bytes,mibps";

/// Run one experiment point: a concurrent column-wise collective write.
///
/// A fresh [`FileSystem`] is created per point so server horizons and file
/// contents start clean; determinism then follows from the virtual-time
/// model (barrier-aligned arrivals, work-conserving horizons).
pub fn measure_colwise(
    profile: &PlatformProfile,
    m: u64,
    n: u64,
    p: usize,
    r: u64,
    strategy: Option<Strategy>,
    io_path: IoPath,
) -> Point {
    measure_colwise_two_phase(
        profile,
        m,
        n,
        p,
        r,
        strategy,
        io_path,
        TwoPhaseConfig::default(),
    )
}

/// [`measure_colwise`] with an explicit two-phase configuration, for
/// aggregator-count sweeps. The configuration only matters when `strategy`
/// is [`Strategy::TwoPhase`].
#[allow(clippy::too_many_arguments)] // an experiment point is wide
pub fn measure_colwise_two_phase(
    profile: &PlatformProfile,
    m: u64,
    n: u64,
    p: usize,
    r: u64,
    strategy: Option<Strategy>,
    io_path: IoPath,
    two_phase: TwoPhaseConfig,
) -> Point {
    measure_colwise_inner(profile, m, n, p, r, strategy, io_path, two_phase, None)
}

/// [`measure_colwise_two_phase`] with tracing: every rank's comm/lock/cache
/// events and every server's service spans land in `sink`, ready for
/// [`MemorySink::export_chrome`]. Successive traced runs share the sink, so
/// their timelines overlay (each run restarts virtual time at zero).
#[allow(clippy::too_many_arguments)] // an experiment point is wide
pub fn measure_colwise_traced(
    profile: &PlatformProfile,
    m: u64,
    n: u64,
    p: usize,
    r: u64,
    strategy: Option<Strategy>,
    io_path: IoPath,
    two_phase: TwoPhaseConfig,
    sink: &Arc<MemorySink>,
) -> Point {
    measure_colwise_inner(
        profile,
        m,
        n,
        p,
        r,
        strategy,
        io_path,
        two_phase,
        Some(sink),
    )
}

#[allow(clippy::too_many_arguments)]
fn measure_colwise_inner(
    profile: &PlatformProfile,
    m: u64,
    n: u64,
    p: usize,
    r: u64,
    strategy: Option<Strategy>,
    io_path: IoPath,
    two_phase: TwoPhaseConfig,
    sink: Option<&Arc<MemorySink>>,
) -> Point {
    let spec = ColWise::new(m, n, p, r).expect("valid experiment geometry");
    let fs = FileSystem::new(profile.clone());
    if let Some(s) = sink {
        fs.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
    }
    let atomicity = strategy.map_or(Atomicity::NonAtomic, Atomicity::Atomic);
    let sink = sink.cloned();

    let reports = run(p, profile.net.clone(), move |comm| {
        if let Some(s) = &sink {
            comm.bind_tracer(Arc::clone(s) as Arc<dyn TraceSink>);
        }
        let part = spec.partition(comm.rank());
        let buf = part.fill(pattern::rank_stamp(comm.rank()));
        let mut file = MpiFile::open(&comm, &fs, "bench", OpenMode::ReadWrite).unwrap();
        file.set_view(0, part.filetype.clone()).unwrap();
        file.set_io_path(io_path);
        file.set_two_phase_config(two_phase);
        file.set_atomicity(atomicity).unwrap();
        comm.barrier(); // align request arrival, as collective I/O does
        let rep = file.write_at_all(0, &buf).unwrap();
        file.close().unwrap();
        rep
    });

    let start = reports.iter().map(|r| r.start).min().unwrap();
    let end = reports.iter().map(|r| r.end).max().unwrap();
    let bytes: u64 = reports.iter().map(|r| r.bytes_written).sum();
    Point {
        platform: profile.name,
        m,
        n,
        size_label: size_label(m * n),
        p,
        strategy,
        makespan: end - start,
        bytes,
        mibps: bandwidth_mibps(bytes, end - start),
    }
}

fn size_label(bytes: u64) -> &'static str {
    match bytes {
        b if b == 32 << 20 => "32 MB",
        b if b == 128 << 20 => "128 MB",
        b if b == 1 << 30 => "1 GB",
        _ => "custom",
    }
}

/// Which strategies run on a platform: the paper's three plus two-phase
/// collective I/O, minus file locking where it does not exist (paper §4:
/// "our performance results on Cplant do not include the experiments that
/// use file locking"). Two-phase runs everywhere — needing no locks on
/// lockless ENFS is precisely its selling point.
pub fn strategies_for(profile: &PlatformProfile) -> Vec<Strategy> {
    Strategy::compared()
        .into_iter()
        .filter(|s| !matches!(s, Strategy::FileLocking(_)) || profile.supports_locking())
        .collect()
}

/// JSON object summarising one latency histogram: sample count plus
/// log₂-bucket quantiles (each quantile is the upper bound of the bucket
/// holding the exact quantile — ≥ it, within 2× of it).
pub fn json_latency(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.max_bound()
    )
}

/// Render a horizontal ASCII bar for a bandwidth value.
pub fn bar(mibps: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((mibps / max) * width as f64).round() as usize
    } else {
        0
    };
    let mut s = String::with_capacity(width);
    for _ in 0..filled.min(width) {
        s.push('█');
    }
    s
}

/// Shape claims of the paper, checked per panel:
/// 1. file locking is the worst strategy wherever it exists;
/// 2. process-rank ordering is at least as good as graph coloring
///    ("in most cases" in the paper — we allow a small tolerance);
/// 3. rank ordering does not *lose* bandwidth as P grows;
/// 4. two-phase collective I/O, when measured, also beats file locking —
///    its serialization-free writes must never degenerate to lock-like
///    behaviour, whatever the aggregator count.
pub fn check_shape(points: &[Point]) -> Vec<String> {
    let mut failures = Vec::new();
    let get = |p: usize, s: Strategy| {
        points
            .iter()
            .find(|pt| pt.p == p && pt.strategy == Some(s))
            .map(|pt| pt.mibps)
    };
    let procs: Vec<usize> = {
        let mut v: Vec<usize> = points.iter().map(|pt| pt.p).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &p in &procs {
        let lock = get(p, Strategy::FileLocking(LockGranularity::Span));
        let color = get(p, Strategy::GraphColoring);
        let rank = get(p, Strategy::RankOrdering);
        let two_phase = get(p, Strategy::TwoPhase);
        if let (Some(l), Some(c)) = (lock, color) {
            if l >= c {
                failures.push(format!("P={p}: locking {l:.2} >= coloring {c:.2}"));
            }
        }
        if let (Some(l), Some(r)) = (lock, rank) {
            if l >= r {
                failures.push(format!("P={p}: locking {l:.2} >= rank-ordering {r:.2}"));
            }
        }
        if let (Some(c), Some(r)) = (color, rank) {
            if c > r * 1.02 {
                failures.push(format!("P={p}: coloring {c:.2} > rank-ordering {r:.2}"));
            }
        }
        if let (Some(l), Some(t)) = (lock, two_phase) {
            if l >= t {
                failures.push(format!("P={p}: locking {l:.2} >= two-phase {t:.2}"));
            }
        }
    }
    // Rank ordering monotone (with 5% tolerance) over P.
    let ro: Vec<f64> = procs
        .iter()
        .filter_map(|&p| get(p, Strategy::RankOrdering))
        .collect();
    for w in ro.windows(2) {
        if w[1] < w[0] * 0.95 {
            failures.push(format!(
                "rank-ordering bandwidth fell from {:.2} to {:.2} as P grew",
                w[0], w[1]
            ));
        }
    }
    failures
}

pub mod negotiation;

#[cfg(test)]
mod tests {
    use atomio_core::ExchangeSchedule;

    use super::*;

    #[test]
    fn point_csv_row_format() {
        let p = Point {
            platform: "TestFS",
            m: 64,
            n: 512,
            size_label: "custom",
            p: 4,
            strategy: Some(Strategy::RankOrdering),
            makespan: 1_000,
            bytes: 32768,
            mibps: 12.5,
        };
        assert_eq!(
            p.csv_row(),
            "TestFS,64,512,custom,4,process-rank-ordering,1000,32768,12.500"
        );
    }

    #[test]
    fn enfs_drops_locking_but_keeps_two_phase() {
        let s = strategies_for(&PlatformProfile::cplant());
        assert_eq!(
            s,
            vec![
                Strategy::GraphColoring,
                Strategy::RankOrdering,
                Strategy::TwoPhase
            ]
        );
        let s = strategies_for(&PlatformProfile::ibm_sp());
        assert_eq!(s.len(), 4);
        assert!(s.contains(&Strategy::TwoPhase));
    }

    #[test]
    fn measure_point_runs_and_is_deterministic() {
        let prof = PlatformProfile::fast_test();
        let a = measure_colwise(
            &prof,
            32,
            512,
            4,
            8,
            Some(Strategy::RankOrdering),
            IoPath::Direct,
        );
        let b = measure_colwise(
            &prof,
            32,
            512,
            4,
            8,
            Some(Strategy::RankOrdering),
            IoPath::Direct,
        );
        assert_eq!(
            a.makespan, b.makespan,
            "virtual makespan must be reproducible"
        );
        assert_eq!(a.bytes, 32 * 512);
        assert!(a.mibps > 0.0);
    }

    #[test]
    fn two_phase_point_deterministic_and_writes_whole_file() {
        let prof = PlatformProfile::fast_test();
        let a = measure_colwise(
            &prof,
            32,
            512,
            4,
            8,
            Some(Strategy::TwoPhase),
            IoPath::Direct,
        );
        let b = measure_colwise(
            &prof,
            32,
            512,
            4,
            8,
            Some(Strategy::TwoPhase),
            IoPath::Direct,
        );
        assert_eq!(
            a.makespan, b.makespan,
            "virtual makespan must be reproducible"
        );
        // Aggregators write the union coverage: exactly the file, once.
        assert_eq!(a.bytes, 32 * 512);
        assert!(a.mibps > 0.0);
    }

    #[test]
    fn aggregator_count_sweep_changes_the_point() {
        // 2 MiB over 256 KiB stripes: enough stripe units for 8 domains.
        let prof = PlatformProfile::ibm_sp();
        let one = measure_colwise_two_phase(
            &prof,
            256,
            8192,
            8,
            8,
            Some(Strategy::TwoPhase),
            IoPath::Direct,
            TwoPhaseConfig {
                aggregators: Some(1),
                ranks_per_node: 1,
                schedule: ExchangeSchedule::Flat,
            },
        );
        let eight = measure_colwise_two_phase(
            &prof,
            256,
            8192,
            8,
            8,
            Some(Strategy::TwoPhase),
            IoPath::Direct,
            TwoPhaseConfig {
                aggregators: Some(8),
                ranks_per_node: 1,
                schedule: ExchangeSchedule::Flat,
            },
        );
        assert!(
            eight.mibps > one.mibps,
            "8 aggregators ({:.2}) should outrun 1 ({:.2})",
            eight.mibps,
            one.mibps
        );
    }

    #[test]
    fn shape_checker_flags_inversions() {
        let mk = |p: usize, s: Strategy, mibps: f64| Point {
            platform: "X",
            m: 1,
            n: 1,
            size_label: "custom",
            p,
            strategy: Some(s),
            makespan: 1,
            bytes: 1,
            mibps,
        };
        let good = vec![
            mk(4, Strategy::FileLocking(LockGranularity::Span), 2.0),
            mk(4, Strategy::GraphColoring, 6.0),
            mk(4, Strategy::RankOrdering, 8.0),
            mk(8, Strategy::FileLocking(LockGranularity::Span), 2.0),
            mk(8, Strategy::GraphColoring, 9.0),
            mk(8, Strategy::RankOrdering, 12.0),
        ];
        assert!(check_shape(&good).is_empty());
        let bad = vec![
            mk(4, Strategy::FileLocking(LockGranularity::Span), 9.0),
            mk(4, Strategy::GraphColoring, 6.0),
            mk(4, Strategy::RankOrdering, 8.0),
        ];
        assert_eq!(check_shape(&bad).len(), 2);
        let slow_two_phase = vec![
            mk(4, Strategy::FileLocking(LockGranularity::Span), 2.0),
            mk(4, Strategy::GraphColoring, 6.0),
            mk(4, Strategy::RankOrdering, 8.0),
            mk(4, Strategy::TwoPhase, 1.5),
        ];
        assert_eq!(check_shape(&slow_two_phase).len(), 1);
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
    }
}
