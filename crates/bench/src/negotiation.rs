//! The view-negotiation kernel, measured dense vs. strided.
//!
//! One *negotiation* = everything the handshaking strategies do before a
//! byte of data moves: build every rank's file-view footprint, materialize
//! the allgather exchange (each rank receives a copy of every footprint),
//! build the overlap graph, and recompute every rank's view under
//! rank ordering (higher-rank union + segment subtraction). The paper's
//! §3.4 argues this overhead must scale with the access *description*; the
//! dense pipeline scales with the row count instead. Both pipelines are
//! measured single-threaded on identical geometry so the comparison is the
//! algorithmic cost, not scheduler noise.

use std::time::Instant;

use atomio_core::{
    greedy_color, higher_union, higher_union_strided, surviving_pieces, surviving_pieces_strided,
    OverlapMatrix,
};
use atomio_dtype::ViewSegment;
use atomio_interval::{IntervalSet, StridedSet};
use atomio_vtime::WireSize;
use atomio_workloads::ColWise;

/// Which footprint representation a measurement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repr {
    Dense,
    Strided,
}

impl Repr {
    pub fn label(&self) -> &'static str {
        match self {
            Repr::Dense => "dense",
            Repr::Strided => "strided",
        }
    }
}

/// Host-time cost of one negotiation, phase by phase, plus the modeled
/// wire volume of the view exchange.
#[derive(Debug, Clone, Copy)]
pub struct NegotiationCost {
    /// Build all P footprints from the views.
    pub footprint_ns: u64,
    /// Materialize the allgather: every rank receives every footprint.
    pub exchange_ns: u64,
    /// Overlap matrix + greedy coloring.
    pub overlap_ns: u64,
    /// Per-rank rank-ordering view recomputation.
    pub recompute_ns: u64,
    /// Bytes one rank's footprint description puts on the wire, summed
    /// over ranks (what the allgather is charged in virtual time).
    pub wire_bytes: u64,
    /// Description units exchanged (runs for dense, trains for strided).
    pub description_units: u64,
    /// Colors of the resulting overlap graph (sanity: must match across
    /// representations).
    pub colors: usize,
    /// Total surviving bytes after rank-ordering recomputation (sanity).
    pub surviving_bytes: u64,
}

impl NegotiationCost {
    /// The acceptance metric: footprint construction + overlap-graph build.
    pub fn build_plus_overlap_ns(&self) -> u64 {
        self.footprint_ns + self.overlap_ns
    }

    pub fn total_ns(&self) -> u64 {
        self.footprint_ns + self.exchange_ns + self.overlap_ns + self.recompute_ns
    }
}

/// Measure one negotiation of the paper's column-wise geometry (M×N bytes,
/// P ranks, R overlapped columns) with the given representation.
pub fn measure_negotiation(m: u64, n: u64, p: usize, r: u64, repr: Repr) -> NegotiationCost {
    let spec = ColWise::new(m, n, p, r).expect("valid geometry");
    let parts: Vec<_> = (0..p).map(|k| spec.partition(k)).collect();
    // Segment lists are needed for the data movement whatever the
    // representation; they are not part of the negotiation cost.
    let segments: Vec<Vec<ViewSegment>> = parts
        .iter()
        .map(|pt| pt.view.segments(0, pt.data_bytes()))
        .collect();

    match repr {
        Repr::Dense => {
            let t = Instant::now();
            let fps: Vec<IntervalSet> = parts
                .iter()
                .map(|pt| pt.view.footprint(pt.data_bytes()))
                .collect();
            let footprint_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let exchanged: Vec<Vec<IntervalSet>> = (0..p).map(|_| fps.clone()).collect();
            let exchange_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let w = OverlapMatrix::from_footprints(&exchanged[0]);
            let colors = greedy_color(&w);
            let overlap_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let mut surviving_bytes = 0u64;
            for (me, segs) in segments.iter().enumerate() {
                let surrendered = higher_union(&exchanged[me], me);
                let pieces = surviving_pieces(segs, &surrendered);
                surviving_bytes += pieces.iter().map(|s| s.len).sum::<u64>();
            }
            let recompute_ns = t.elapsed().as_nanos() as u64;

            NegotiationCost {
                footprint_ns,
                exchange_ns,
                overlap_ns,
                recompute_ns,
                wire_bytes: fps.iter().map(|f| f.wire_size() as u64).sum(),
                description_units: fps.iter().map(|f| f.run_count() as u64).sum(),
                colors: colors.iter().max().map_or(0, |c| c + 1),
                surviving_bytes,
            }
        }
        Repr::Strided => {
            let t = Instant::now();
            let fps: Vec<StridedSet> = parts
                .iter()
                .map(|pt| pt.view.strided_footprint(pt.data_bytes()))
                .collect();
            let footprint_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let exchanged: Vec<Vec<StridedSet>> = (0..p).map(|_| fps.clone()).collect();
            let exchange_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let w = OverlapMatrix::from_strided(&exchanged[0]);
            let colors = greedy_color(&w);
            let overlap_ns = t.elapsed().as_nanos() as u64;

            let t = Instant::now();
            let mut surviving_bytes = 0u64;
            for (me, segs) in segments.iter().enumerate() {
                let surrendered = higher_union_strided(&exchanged[me], me);
                let pieces = surviving_pieces_strided(segs, &surrendered);
                surviving_bytes += pieces.iter().map(|s| s.len).sum::<u64>();
            }
            let recompute_ns = t.elapsed().as_nanos() as u64;

            NegotiationCost {
                footprint_ns,
                exchange_ns,
                overlap_ns,
                recompute_ns,
                wire_bytes: fps.iter().map(|f| f.wire_size() as u64).sum(),
                description_units: fps.iter().map(|f| f.train_count() as u64).sum(),
                colors: colors.iter().max().map_or(0, |c| c + 1),
                surviving_bytes,
            }
        }
    }
}

/// Best-of-`iters` measurement (minimum per phase is taken jointly by
/// total; the phases of the winning iteration are reported).
pub fn measure_best(m: u64, n: u64, p: usize, r: u64, repr: Repr, iters: u32) -> NegotiationCost {
    let mut best: Option<NegotiationCost> = None;
    for _ in 0..iters.max(1) {
        let c = measure_negotiation(m, n, p, r, repr);
        if best.is_none_or(|b| c.total_ns() < b.total_ns()) {
            best = Some(c);
        }
    }
    best.expect("at least one iteration")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_strided_negotiations_agree() {
        for p in [2usize, 4, 7] {
            let d = measure_negotiation(32, 448, p, 8, Repr::Dense);
            let s = measure_negotiation(32, 448, p, 8, Repr::Strided);
            assert_eq!(d.colors, s.colors, "P={p}");
            assert_eq!(d.surviving_bytes, s.surviving_bytes, "P={p}");
            // Rank ordering writes each byte exactly once.
            assert_eq!(s.surviving_bytes, 32 * 448, "P={p}");
            assert!(s.wire_bytes <= d.wire_bytes, "P={p}");
        }
    }

    #[test]
    fn strided_description_is_row_count_independent() {
        let small = measure_negotiation(8, 448, 4, 8, Repr::Strided);
        let tall = measure_negotiation(256, 448, 4, 8, Repr::Strided);
        assert_eq!(
            small.description_units, tall.description_units,
            "trains must not grow with M"
        );
        let dense_tall = measure_negotiation(256, 448, 4, 8, Repr::Dense);
        assert_eq!(dense_tall.description_units, 256 * 4, "one run per row");
    }
}
