//! The static lock-order graph and the R4–R6 analyses.
//!
//! Built on [`crate::scopes`] guard-lifetime inference, this pass
//! assembles a whole-workspace picture of the locking discipline *before
//! any schedule runs*:
//!
//! 1. **Class table** — every `OrderedMutex::with_rank("class", rank, …)`
//!    / `OrderedMutex::new("class", …)` construction site defines a lock
//!    class; the `lockclass::*` wrapper functions are resolved so a call
//!    like `lockclass::cache(…)` binds its receiver to `pfs.cache`.
//! 2. **Receiver resolution** — a guard receiver (`self.cache.lock()` →
//!    `cache`) is mapped to a class by, in order: the enclosing impl
//!    type's field bindings, the file's local bindings, a globally
//!    unambiguous binding, and finally a per-file pseudo-class
//!    `<stem>.<receiver>` so undeclared (bare parking_lot) mutexes still
//!    participate in cycle detection.
//! 3. **Function summaries** — one per definition, keyed `(name, arity)`
//!    so e.g. the 1-arg `RevocationHandler::granted` and the 3-arg
//!    `PosixFile::granted` stay distinct. Call sites resolve to at most
//!    one definition (`self.` calls within the impl; otherwise a unique,
//!    shape-compatible definition whose name doesn't shadow a ubiquitous
//!    std method). A fixpoint closes `may_acquire` (classes a call may
//!    take) and `may_block` (reaches a blocking seed) over the call
//!    graph.
//! 4. **Edges** — class H → class C whenever C is acquired (directly or
//!    via any resolved callee) while a guard of H is live.
//!
//! The analyses gate CI through `lintcheck`:
//!
//! * **R4** — no lock guard live across a blocking call. Seeds:
//!   [`BLOCKING_SEEDS`] (`Comm` point-to-point and collectives via
//!   `rendezvous`, `LockService::acquire_set`/`wait_granted_set`, server
//!   round-trips via `try_pread`/`try_pwrite`/`try_sync`/`server_rpc`);
//!   everything that can reach one transitively is blocking too.
//! * **R5** — no silently dropped `Result` from the `try_`/`FsError`
//!   plumbing: a statement-final call whose value nothing consumes, where
//!   the callee is `try_*` or resolves to a `Result`-returning workspace
//!   fn. `?`, bindings, and macro arguments don't count.
//! * **R6** — the static lock-order graph must be acyclic and respect
//!   the declared `with_rank` chain (an edge from rank r₁ to r₂ needs
//!   r₁ < r₂). The runtime-discovered graph ([`crate::lockorder`]) is
//!   cross-validated as a subset in `tests/check_static.rs`.

use crate::lexer::TokKind;
use crate::lint::LintDiag;
use crate::lockorder::LockEdge;
use crate::scopes::{self, FileModel};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;

/// Function names treated as blocking a priori. Deliberately *not*
/// including common names like `split`/`gather`/`scan` (too collision
/// prone — `str::split` would light up); the `Comm` collectives built on
/// them are caught transitively through `rendezvous`.
pub const BLOCKING_SEEDS: &[&str] = &[
    "send",
    "recv",
    "barrier",
    "allgather",
    "alltoallv",
    "gatherv",
    "rendezvous",
    "acquire_set",
    "wait_granted_set",
    "try_pread",
    "try_pwrite",
    "try_sync",
    "server_rpc",
    // The vtime server round-trip primitives (`ServerSet`): every
    // remote-I/O path funnels through these.
    "access",
    "serve_piece",
];

/// One statically derived may-hold-while-acquiring edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticEdge {
    pub from: String,
    pub to: String,
    /// Repo-relative file of the witnessing acquisition/call site.
    pub file: String,
    pub line: u32,
}

/// Whole-workspace static concurrency analysis.
pub struct StaticAnalysis {
    /// Declared lock classes → rank (None for unranked).
    pub classes: BTreeMap<String, Option<u32>>,
    /// Deduped (from, to) edges, sorted; the site is the lexicographically
    /// first witness.
    pub edges: Vec<StaticEdge>,
    /// R4/R5/R6 diagnostics, *before* allowlist filtering.
    pub diags: Vec<LintDiag>,
}

/// Method names shadowing ubiquitous std / collection methods. A call to
/// one of these never resolves to a workspace definition unless it is a
/// `self.` call inside the defining impl — otherwise `std::mem::take` in
/// a journal would "call" `MsgQueue::take` and every map `.insert` would
/// alias whichever workspace type happens to define `insert`.
const STD_COLLIDERS: &[&str] = &[
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "take",
    "replace",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clone",
    "cloned",
    "copied",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "any",
    "all",
    "find",
    "position",
    "count",
    "collect",
    "extend",
    "entry",
    "or_insert",
    "or_default",
    "and_then",
    "or_else",
    "min",
    "max",
    "sum",
    "rev",
    "last",
    "first",
    "sort",
    "sort_by",
    "sort_by_key",
    "retain",
    "drain",
    "split",
    "split_at",
    "split_off",
    "join",
    "to_vec",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "new",
    "default",
    "eq",
    "cmp",
    "fmt",
    "write",
    "read",
    "flush",
    "wait",
    "wait_for",
    "notify_all",
    "notify_one",
    "store",
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
    "truncate",
    "resize",
];

/// First path segments that mark a call as rooted outside the workspace
/// (`std::mem::take`, `Vec::with_capacity`, …).
const EXTERN_QUALS: &[&str] = &[
    "std", "core", "alloc", "mem", "ptr", "fmt", "fs", "cmp", "iter", "slice", "str", "thread",
    "process", "env", "io", "sync", "atomic", "time", "Box", "Vec", "Arc", "Rc", "String",
    "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Option", "Some", "Ok", "Err",
    "Result", "Ordering", "Duration", "Instant", "Path", "PathBuf",
];

pub fn analyze_sources(files: &[(String, String)]) -> StaticAnalysis {
    // Pass A: signatures only, to learn guard-returning helper names.
    let empty = HashSet::new();
    let mut guard_fns: HashSet<String> = HashSet::new();
    for (_, text) in files {
        for f in &scopes::analyze(text, &empty).fns {
            if f.returns_guard {
                guard_fns.insert(f.name.clone());
            }
        }
    }
    // Pass B: full guard-lifetime analysis.
    let models: Vec<(&str, FileModel)> = files
        .iter()
        .map(|(p, t)| (p.as_str(), scopes::analyze(t, &guard_fns)))
        .collect();

    // Class table from OrderedMutex construction sites.
    let mut classes: BTreeMap<String, Option<u32>> = BTreeMap::new();
    let mut ctor_fns: HashMap<String, String> = HashMap::new();
    for (path, m) in &models {
        collect_classes(path, m, &mut classes, &mut ctor_fns);
    }

    // Receiver → class binding maps.
    let mut by_type: HashMap<(String, String), String> = HashMap::new();
    let mut by_file: HashMap<(String, String), String> = HashMap::new();
    let mut global: HashMap<String, BTreeSet<String>> = HashMap::new();
    for (path, m) in &models {
        collect_bindings(
            path,
            m,
            &classes,
            &ctor_fns,
            &mut by_type,
            &mut by_file,
            &mut global,
        );
    }

    // Receiver-variable types from `let x = [Arc::new(] Type::ctor(…)`
    // bindings: used to pick between same-named methods on different
    // types (`coherence.bind_faults(…)` → `CoherenceHub::bind_faults`,
    // not `ServerSet::bind_faults`). Keyed per file — the same short name
    // (`file`, `fs`, `stats`) binds different types in different files —
    // and only a within-file *unambiguous* name narrows anything.
    let mut var_types: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for (path, m) in &models {
        collect_var_types(path, m, &mut var_types);
    }

    // Per-definition function summaries. The same (name, arity) may be
    // defined on several types — resolution discriminates between the
    // definitions and only unions them for *trait-declared* methods,
    // where a call is dynamic dispatch over every implementation (a
    // blanket union would turn every generically named method into a
    // false cross-crate call edge).
    struct DefSum {
        path: String,
        impl_type: Option<String>,
        in_trait: bool,
        seed: bool,
        returns_result: bool,
        acquire_classes: BTreeSet<String>,
        calls: Vec<(String, usize, Option<String>, Option<String>)>,
    }
    let mut defs: Vec<DefSum> = Vec::new();
    let mut by_key: HashMap<(String, usize), Vec<usize>> = HashMap::new();
    let mut trait_methods: HashSet<(String, usize)> = HashSet::new();
    for (path, m) in &models {
        for f in &m.fns {
            if f.in_trait {
                trait_methods.insert((f.name.clone(), f.arity));
            }
            let mut acquire_classes = BTreeSet::new();
            for a in &f.acquires {
                acquire_classes.insert(resolve_class(
                    &a.receiver,
                    f.impl_type.as_deref(),
                    path,
                    &by_type,
                    &by_file,
                    &global,
                ));
            }
            by_key
                .entry((f.name.clone(), f.arity))
                .or_default()
                .push(defs.len());
            defs.push(DefSum {
                path: path.to_string(),
                impl_type: f.impl_type.clone(),
                in_trait: f.in_trait,
                seed: BLOCKING_SEEDS.contains(&f.name.as_str()),
                returns_result: f.returns_result,
                acquire_classes,
                calls: f
                    .calls
                    .iter()
                    .map(|c| (c.name.clone(), c.arity, c.recv.clone(), c.qual.clone()))
                    .collect(),
            });
        }
    }

    // Call-site → definition resolution. Deliberately precise-first:
    //  * `self.f(…)` resolves within the caller's own impl type;
    //  * names that shadow ubiquitous std/collection methods never
    //    resolve cross-impl (`.take()`, `.insert()`, `.expect()`, …);
    //  * paths rooted outside the workspace (`std::mem::take`) never
    //    resolve;
    //  * a unique (name, arity) definition resolves when its shape
    //    matches the call (methods need a receiver or path, free
    //    functions must be called bare) and the receiver's known type
    //    (from `let x = Type::ctor(…)`) doesn't contradict it;
    //  * among several definitions, the receiver's known type picks the
    //    matching impl; failing that, a *trait-declared* method resolves
    //    to all implementations (dyn dispatch).
    // An unresolved call contributes nothing — blocking coverage for
    // externals comes from the name-based `BLOCKING_SEEDS` instead.
    let resolve_defs = |name: &str,
                        arity: usize,
                        recv: Option<&str>,
                        qual: Option<&str>,
                        caller_impl: Option<&str>,
                        caller_path: &str|
     -> Vec<usize> {
        if qual.is_some_and(|q| EXTERN_QUALS.contains(&q)) {
            return Vec::new();
        }
        let Some(cands) = by_key.get(&(name.to_string(), arity)) else {
            return Vec::new();
        };
        if recv == Some("self") {
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| defs[i].impl_type.as_deref() == caller_impl && caller_impl.is_some())
                .collect();
            if same.len() == 1 {
                return same;
            }
            if !same.is_empty() {
                return Vec::new();
            }
            // No same-impl definition (trait default, extension): fall
            // through to the unique-definition path.
        }
        if STD_COLLIDERS.contains(&name) {
            return Vec::new();
        }
        let recv_type = recv
            .and_then(|r| var_types.get(&(caller_path.to_string(), r.to_string())))
            .filter(|set| set.len() == 1)
            .and_then(|set| set.iter().next());
        if cands.len() == 1 {
            let d = &defs[cands[0]];
            if let (Some(ty), Some(it)) = (recv_type, &d.impl_type) {
                if ty != it {
                    return Vec::new(); // typed receiver contradicts the def
                }
            }
            return match (&d.impl_type, recv.is_some() || qual.is_some()) {
                (Some(_), true) => vec![cands[0]],
                (Some(_), false) => Vec::new(),
                (None, _) => {
                    if recv.is_none() {
                        vec![cands[0]]
                    } else {
                        Vec::new()
                    }
                }
            };
        }
        if let Some(ty) = recv_type {
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| defs[i].impl_type.as_deref() == Some(ty.as_str()))
                .collect();
            if narrowed.len() == 1 {
                return narrowed;
            }
        }
        if trait_methods.contains(&(name.to_string(), arity)) && (recv.is_some() || qual.is_some())
        {
            return cands
                .iter()
                .copied()
                .filter(|&i| defs[i].impl_type.is_some() || defs[i].in_trait)
                .collect();
        }
        Vec::new()
    };

    // Fixpoint: close may_block and may_acquire over the call graph.
    let mut may_block: Vec<bool> = defs.iter().map(|d| d.seed).collect();
    let mut may_acquire: Vec<BTreeSet<String>> =
        defs.iter().map(|d| d.acquire_classes.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..defs.len() {
            let mut block = may_block[i];
            let mut acq = may_acquire[i].clone();
            for (cn, ca, recv, qual) in &defs[i].calls {
                if BLOCKING_SEEDS.contains(&cn.as_str()) {
                    block = true;
                }
                for j in resolve_defs(
                    cn,
                    *ca,
                    recv.as_deref(),
                    qual.as_deref(),
                    defs[i].impl_type.as_deref(),
                    &defs[i].path,
                ) {
                    if j != i {
                        block |= may_block[j];
                        acq.extend(may_acquire[j].iter().cloned());
                    }
                }
            }
            if block != may_block[i] {
                may_block[i] = block;
                changed = true;
            }
            if acq.len() != may_acquire[i].len() {
                may_acquire[i] = acq;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges + R4/R5 diagnostics from every function's recorded sites.
    let mut edge_map: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut diags: Vec<LintDiag> = Vec::new();
    let mut add_edge = |from: &str, to: &str, file: &str, line: u32| {
        let site = (file.to_string(), line);
        edge_map
            .entry((from.to_string(), to.to_string()))
            .and_modify(|best| {
                if site < *best {
                    *best = site.clone();
                }
            })
            .or_insert(site);
    };
    for (path, m) in &models {
        let lines: Vec<&str> = files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, t)| t.lines().collect())
            .unwrap_or_default();
        let src_at = |line: u32| -> String {
            lines
                .get(line.saturating_sub(1) as usize)
                .map(|s| s.to_string())
                .unwrap_or_default()
        };
        for f in &m.fns {
            let resolve = |recv: &str| {
                resolve_class(
                    recv,
                    f.impl_type.as_deref(),
                    path,
                    &by_type,
                    &by_file,
                    &global,
                )
            };
            for a in &f.acquires {
                let to = resolve(&a.receiver);
                for h in &a.held {
                    add_edge(&resolve(&h.receiver), &to, path, a.line);
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                let resolved = resolve_defs(
                    &c.name,
                    c.arity,
                    c.recv.as_deref(),
                    c.qual.as_deref(),
                    f.impl_type.as_deref(),
                    path,
                );
                // R4: blocking call with a guard live.
                let blocking = BLOCKING_SEEDS.contains(&c.name.as_str())
                    || resolved.iter().any(|&j| may_block[j]);
                if blocking {
                    let held: Vec<String> = c.held.iter().map(|h| resolve(&h.receiver)).collect();
                    diags.push(LintDiag {
                        path: path.to_string(),
                        line: c.line as usize,
                        rule: "R4",
                        message: format!(
                            "lock guard ({}) held across blocking call `{}` — release before blocking or justify in lintcheck.allow",
                            held.join(", "),
                            c.name
                        ),
                        source: src_at(c.line),
                    });
                }
                // Transitive edges through the callee(s).
                for &j in &resolved {
                    for to in &may_acquire[j] {
                        for h in &c.held {
                            add_edge(&resolve(&h.receiver), to, path, c.line);
                        }
                    }
                }
            }
            // R5: silently dropped fallible results.
            for d in &f.discards {
                let fallible = d.name.starts_with("try_")
                    || resolve_defs(
                        &d.name,
                        d.arity,
                        d.recv.as_deref(),
                        d.qual.as_deref(),
                        f.impl_type.as_deref(),
                        path,
                    )
                    .iter()
                    .any(|&j| defs[j].returns_result);
                if fallible {
                    diags.push(LintDiag {
                        path: path.to_string(),
                        line: d.line as usize,
                        rule: "R5",
                        message: format!(
                            "result of fallible `{}` silently dropped — handle, `?`, or bind it",
                            d.name
                        ),
                        source: src_at(d.line),
                    });
                }
            }
        }
    }

    let edges: Vec<StaticEdge> = edge_map
        .into_iter()
        .map(|((from, to), (file, line))| StaticEdge {
            from,
            to,
            file,
            line,
        })
        .collect();

    // R6: acyclicity + rank respect.
    for cycle in find_cycles(&edges) {
        let witness = edges
            .iter()
            .find(|e| e.from == cycle[0])
            .expect("cycle node has an outgoing edge");
        diags.push(LintDiag {
            path: witness.file.clone(),
            line: witness.line as usize,
            rule: "R6",
            message: format!("static lock-order cycle: {}", cycle.join(" -> ")),
            source: String::new(),
        });
    }
    for e in &edges {
        if let (Some(Some(rf)), Some(Some(rt))) = (classes.get(&e.from), classes.get(&e.to)) {
            if rf >= rt {
                diags.push(LintDiag {
                    path: e.file.clone(),
                    line: e.line as usize,
                    rule: "R6",
                    message: format!(
                        "static edge {} (rank {rf}) -> {} (rank {rt}) violates the declared with_rank chain",
                        e.from, e.to
                    ),
                    source: String::new(),
                });
            }
        }
    }

    StaticAnalysis {
        classes,
        edges,
        diags,
    }
}

/// All elementary cycles' entry points, deterministically: DFS over the
/// sorted edge list; each strongly-connected back edge yields the cycle
/// path `[a, b, …, a]` once, keyed by its smallest node.
fn find_cycles(edges: &[StaticEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut done: HashSet<&str> = HashSet::new();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_keys: HashSet<String> = HashSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit path for cycle extraction.
        let mut path: Vec<&str> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        let mut on_path: HashSet<&str> = [start].into();
        while let Some(&node) = path.last() {
            let i = *iters.last().expect("in sync with path");
            let next = adj.get(node).and_then(|v| v.get(i)).copied();
            match next {
                Some(n) => {
                    *iters.last_mut().expect("in sync") += 1;
                    if on_path.contains(n) {
                        let pos = path.iter().position(|&p| p == n).expect("on path");
                        let mut cyc: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        cyc.push(n.to_string());
                        // Canonical key: rotate so the smallest node leads.
                        let mut key_nodes = cyc[..cyc.len() - 1].to_vec();
                        key_nodes.sort();
                        let key = key_nodes.join("|");
                        if seen_keys.insert(key) {
                            cycles.push(cyc);
                        }
                    } else if !done.contains(n) {
                        path.push(n);
                        iters.push(0);
                        on_path.insert(n);
                    }
                }
                None => {
                    done.insert(node);
                    on_path.remove(node);
                    path.pop();
                    iters.pop();
                }
            }
        }
    }
    cycles
}

/// Analyze every workspace source file under `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<StaticAnalysis> {
    let mut files = Vec::new();
    for file in crate::lint::workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok(analyze_sources(&files))
}

impl StaticAnalysis {
    /// Runtime edges (class pairs) not derivable statically. The static
    /// graph must over-approximate every schedule, so this should always
    /// be empty; non-empty means the analyzer lost an acquisition.
    pub fn missing_runtime_edges(&self, runtime: &[LockEdge]) -> Vec<(String, String)> {
        let have: HashSet<(&str, &str)> = self
            .edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        let mut missing: Vec<(String, String)> = runtime
            .iter()
            .filter(|e| !have.contains(&(e.from, e.to)))
            .map(|e| (e.from.to_string(), e.to.to_string()))
            .collect();
        missing.sort();
        missing.dedup();
        missing
    }

    /// Deterministic JSON report: declared classes with ranks, then the
    /// edge list. Sites are file-only so the fixture survives unrelated
    /// line churn.
    pub fn report_json(&self) -> String {
        let mut s = String::from("{\n  \"classes\": [\n");
        let n = self.classes.len();
        for (i, (name, rank)) in self.classes.iter().enumerate() {
            match rank {
                Some(r) => s.push_str(&format!("    {{\"name\": \"{name}\", \"rank\": {r}}}")),
                None => s.push_str(&format!("    {{\"name\": \"{name}\"}}")),
            }
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n  \"edges\": [\n");
        let n = self.edges.len();
        for (i, e) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"site\": \"{}\"}}",
                e.from, e.to, e.file
            ));
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Deterministic Graphviz DOT rendering of the edge list; ranked
    /// classes carry their rank in the label.
    pub fn report_dot(&self) -> String {
        let mut s = String::from("digraph static_lock_order {\n  rankdir=LR;\n");
        for (name, rank) in &self.classes {
            match rank {
                Some(r) => s.push_str(&format!("  \"{name}\" [label=\"{name}\\nrank {r}\"];\n")),
                None => s.push_str(&format!("  \"{name}\";\n")),
            }
        }
        for e in &self.edges {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                e.from,
                e.to,
                e.file.rsplit('/').next().unwrap_or(&e.file)
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Strip the quotes (and any raw-string `r#`/byte prefix) from a string
/// literal token's text.
fn unquote(text: &str) -> String {
    let inner = text.trim_start_matches(['b', 'c', 'r', '#']);
    let inner = inner.trim_start_matches('"');
    let inner = inner.trim_end_matches('#');
    let inner = inner.trim_end_matches('"');
    inner.to_string()
}

/// Find `OrderedMutex::with_rank("class", rank, …)` / `::new("class", …)`
/// sites: record the class (+rank), and map the enclosing fn (if any) as
/// a constructor wrapper for that class.
fn collect_classes(
    _path: &str,
    m: &FileModel,
    classes: &mut BTreeMap<String, Option<u32>>,
    ctor_fns: &mut HashMap<String, String>,
) {
    let toks = &m.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("OrderedMutex") {
            continue;
        }
        // `#[cfg(test)]` fixtures declare throwaway classes (`t.cyc_a`…);
        // they are not part of the product lock discipline.
        if m.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(t1) = toks.get(i + 1) else { continue };
        let Some(t2) = toks.get(i + 2) else { continue };
        if !t1.is_punct("::") {
            continue;
        }
        let ranked = t2.is_ident("with_rank");
        if !ranked && !t2.is_ident("new") {
            continue;
        }
        let (Some(t3), Some(t4)) = (toks.get(i + 3), toks.get(i + 4)) else {
            continue;
        };
        if !t3.is_punct("(") || t4.kind != TokKind::Str {
            continue;
        }
        let class = unquote(&t4.text);
        let rank = if ranked {
            toks.get(i + 6)
                .filter(|t| t.kind == TokKind::Num)
                .and_then(|t| t.text.parse::<u32>().ok())
        } else {
            None
        };
        let entry = classes.entry(class.clone()).or_insert(rank);
        if entry.is_none() {
            *entry = rank;
        }
        for f in &m.fns {
            if let Some((b0, b1)) = f.body {
                if b0 <= i && i <= b1 {
                    ctor_fns.insert(f.name.clone(), class.clone());
                    break;
                }
            }
        }
    }
}

/// Find receiver bindings: occurrences of a class-constructor call
/// (`lockclass::cache(…)`, a `ctor_fns` wrapper, or a direct
/// `OrderedMutex::with_rank("class", …)`), then walk back to the binder
/// (`field: …` struct init, `let x = …`, `static X: … = …`).
fn collect_bindings(
    path: &str,
    m: &FileModel,
    classes: &BTreeMap<String, Option<u32>>,
    ctor_fns: &HashMap<String, String>,
    by_type: &mut HashMap<(String, String), String>,
    by_file: &mut HashMap<(String, String), String>,
    global: &mut HashMap<String, BTreeSet<String>>,
) {
    let _ = classes;
    let toks = &m.toks;
    for i in 0..toks.len() {
        // A ctor occurrence at token i: ident W with following `(`,
        // where W is a wrapper fn (not its own definition site).
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let class = match ctor_fns.get(&t.text) {
            Some(c)
                if toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && !(i > 0 && toks[i - 1].is_ident("fn")) =>
            {
                c.clone()
            }
            _ => {
                // Direct OrderedMutex::with_rank / ::new use.
                if t.is_ident("OrderedMutex")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.is_ident("with_rank") || n.is_ident("new"))
                    && toks.get(i + 4).is_some_and(|n| n.kind == TokKind::Str)
                {
                    unquote(&toks[i + 4].text)
                } else {
                    continue;
                }
            }
        };
        // Path start: walk back over `prefix::` segments.
        let mut ps = i;
        while ps >= 2 && toks[ps - 1].is_punct("::") && toks[ps - 2].kind == TokKind::Ident {
            ps -= 2;
        }
        let Some(binder) = find_binder(m, ps) else {
            continue;
        };
        // Which impl type contains this occurrence?
        let impl_type = m.fns.iter().find_map(|f| match (f.body, &f.impl_type) {
            (Some((b0, b1)), Some(ty)) if b0 <= i && i <= b1 => Some(ty.clone()),
            _ => None,
        });
        if let Some(ty) = impl_type {
            by_type.entry((ty, binder.clone())).or_insert(class.clone());
        }
        by_file
            .entry((path.to_string(), binder.clone()))
            .or_insert(class.clone());
        global.entry(binder).or_default().insert(class);
    }
}

/// Record receiver types from `let [mut] x = [Arc::new(]* Type::ctor(…)`
/// bindings (test-masked tokens excluded), keyed per file. A name
/// recorded with several types in one file never narrows anything, so
/// rebinding collisions are harmless; types the workspace doesn't define
/// (`String`, `Vec`, …) are skipped outright.
fn collect_var_types(
    path: &str,
    m: &FileModel,
    var_types: &mut HashMap<(String, String), BTreeSet<String>>,
) {
    let toks = &m.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") || m.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks
            .get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
        else {
            continue;
        };
        if toks.get(j + 1).map(|t| t.is_punct("=")) != Some(true) {
            continue;
        }
        // Skip constructor wrappers (`Arc::new(` layers) in the
        // initializer, then expect `Type::…`.
        let mut k = j + 2;
        let mut budget = 12;
        while budget > 0 {
            match toks.get(k).map(|t| t.text.as_str()) {
                Some("Arc" | "Box" | "Rc" | "::" | "new" | "(") => {
                    k += 1;
                    budget -= 1;
                }
                _ => break,
            }
        }
        let Some(ty) = toks.get(k).filter(|t| {
            t.kind == TokKind::Ident
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
        }) else {
            continue;
        };
        if toks.get(k + 1).map(|t| t.is_punct("::")) != Some(true)
            || EXTERN_QUALS.contains(&ty.text.as_str())
        {
            continue;
        }
        var_types
            .entry((path.to_string(), name))
            .or_default()
            .insert(ty.text.clone());
    }
}

/// Walk back from a ctor path start to the binder ident, skipping
/// wrapper layers (`Arc::new(`, `Some(`, `Box::new(`).
fn find_binder(m: &FileModel, path_start: usize) -> Option<String> {
    let toks = &m.toks;
    let mut j = path_start;
    let mut budget = 16;
    while j > 0 && budget > 0 {
        budget -= 1;
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "::" => continue,
            "Arc" | "Box" | "Some" | "new" | "Ok" => continue,
            ":" => {
                // `field: ctor(…)` or `let x: Ty = ctor(…)` — the binder
                // is the ident before the colon.
                return toks
                    .get(j.checked_sub(1)?)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            "=" => {
                // `let [mut] x = ctor(…)` / `x = ctor(…)` /
                // `static X: Ty = ctor(…)` (the `:` form is caught above
                // only without initializer wrapping; handle both).
                let mut k = j;
                let mut inner_budget = 16;
                while k > 0 && inner_budget > 0 {
                    inner_budget -= 1;
                    k -= 1;
                    let u = &toks[k];
                    if u.is_ident("let") || u.is_ident("static") || u.is_ident("const") {
                        // Binder follows, skipping `mut`.
                        let mut b = k + 1;
                        if toks.get(b).is_some_and(|t| t.is_ident("mut")) {
                            b += 1;
                        }
                        return toks
                            .get(b)
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone());
                    }
                    if u.is_punct(";") || u.is_punct("{") || u.is_punct("}") {
                        break;
                    }
                }
                // Plain assignment: ident right before `=`.
                return toks
                    .get(j.checked_sub(1)?)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            _ => return None,
        }
    }
    None
}

/// Resolve a guard receiver to a lock class.
fn resolve_class(
    receiver: &str,
    impl_type: Option<&str>,
    path: &str,
    by_type: &HashMap<(String, String), String>,
    by_file: &HashMap<(String, String), String>,
    global: &HashMap<String, BTreeSet<String>>,
) -> String {
    if let Some(helper) = receiver.strip_prefix("fnret:") {
        // A guard from a helper fn: pseudo-class unless the helper is a
        // known ctor (it isn't — helpers return guards, not mutexes).
        return format!("fnret.{helper}");
    }
    if let Some(ty) = impl_type {
        if let Some(c) = by_type.get(&(ty.to_string(), receiver.to_string())) {
            return c.clone();
        }
    }
    if let Some(c) = by_file.get(&(path.to_string(), receiver.to_string())) {
        return c.clone();
    }
    if let Some(set) = global.get(receiver) {
        if set.len() == 1 {
            return set.iter().next().expect("non-empty").clone();
        }
    }
    let stem = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".into());
    format!("{stem}.{receiver}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect()
    }

    const CLASSES: &str = r#"
pub fn state_class<T>(v: T) -> OrderedMutex<T> { OrderedMutex::with_rank("t.state", 10, v) }
pub fn cache_class<T>(v: T) -> OrderedMutex<T> { OrderedMutex::with_rank("t.cache", 20, v) }
"#;

    #[test]
    fn edges_from_nested_acquisition() {
        let fs = files(&[
            ("src/classes.rs", CLASSES),
            (
                "src/a.rs",
                "impl M {\n fn new() -> M { M { state: state_class(0), cache: cache_class(0) } }\n fn f(&self) { let s = self.state.lock(); let c = self.cache.lock(); } }\n",
            ),
        ]);
        let a = analyze_sources(&fs);
        assert!(
            a.edges
                .iter()
                .any(|e| e.from == "t.state" && e.to == "t.cache"),
            "{:?}",
            a.edges
        );
        assert!(a.diags.is_empty(), "{:?}", a.diags);
        assert_eq!(a.classes.get("t.state"), Some(&Some(10)));
    }

    #[test]
    fn r6_rank_violation_detected() {
        let fs = files(&[
            ("src/classes.rs", CLASSES),
            (
                "src/a.rs",
                "impl M {\n fn new() -> M { M { state: state_class(0), cache: cache_class(0) } }\n fn f(&self) { let c = self.cache.lock(); let s = self.state.lock(); } }\n",
            ),
        ]);
        let a = analyze_sources(&fs);
        assert!(
            a.diags
                .iter()
                .any(|d| d.rule == "R6" && d.message.contains("violates")),
            "{:?}",
            a.diags
        );
    }

    #[test]
    fn r6_cycle_detected_between_unranked() {
        let fs = files(&[(
            "src/a.rs",
            "impl M {\n fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); }\n fn g(&self) { let b = self.y.lock(); let a = self.x.lock(); } }\n",
        )]);
        let a = analyze_sources(&fs);
        assert!(
            a.diags
                .iter()
                .any(|d| d.rule == "R6" && d.message.contains("cycle")),
            "{:?}",
            a.diags
        );
    }

    #[test]
    fn r4_guard_across_blocking_call_direct_and_transitive() {
        let fs = files(&[(
            "src/a.rs",
            "impl M {\n fn f(&self) { let g = self.state.lock(); self.comm.barrier(); }\n fn mid(&self) { self.comm.barrier(); }\n fn h(&self) { let g = self.state.lock(); self.mid(); } }\n",
        )]);
        let a = analyze_sources(&fs);
        let r4: Vec<_> = a.diags.iter().filter(|d| d.rule == "R4").collect();
        assert_eq!(r4.len(), 2, "{r4:?}");
        assert!(r4.iter().any(|d| d.message.contains("`barrier`")));
        assert!(r4.iter().any(|d| d.message.contains("`mid`")));
    }

    #[test]
    fn r4_clean_after_early_drop() {
        let fs = files(&[(
            "src/a.rs",
            "impl M { fn f(&self) { let g = self.state.lock(); drop(g); self.comm.barrier(); } }\n",
        )]);
        let a = analyze_sources(&fs);
        assert!(a.diags.iter().all(|d| d.rule != "R4"), "{:?}", a.diags);
    }

    #[test]
    fn r5_dropped_try_result() {
        let fs = files(&[(
            "src/a.rs",
            "impl M {\n fn try_sync(&self) -> Result<(), E> { Ok(()) }\n fn settle(&self) -> Result<u8, E> { Ok(0) }\n fn f(&self) { self.try_sync(); let _ = self.settle(); self.try_sync()?; let r = self.settle(); r?; } }\n",
        )]);
        let a = analyze_sources(&fs);
        let r5: Vec<_> = a.diags.iter().filter(|d| d.rule == "R5").collect();
        assert_eq!(r5.len(), 2, "{r5:?}");
    }

    #[test]
    fn arity_disambiguates_same_name() {
        // 1-arg `granted` acquires; 3-arg `granted` blocks. The caller
        // holding a guard calls the 3-arg one — only R4, no false edge
        // to the 1-arg impl's class.
        let fs = files(&[(
            "src/a.rs",
            "impl A { fn granted(&self, r: R) { let c = self.cache.lock(); } }\nimpl B { fn granted(&self, a: u8, b: u8, c: u8) { self.comm.barrier(); } }\nimpl C { fn f(&self) { let s = self.state.lock(); self.b.granted(1, 2, 3); } }\n",
        )]);
        let a = analyze_sources(&fs);
        assert!(a.diags.iter().any(|d| d.rule == "R4"));
        assert!(!a.edges.iter().any(|e| e.to == "a.cache"), "{:?}", a.edges);
    }

    #[test]
    fn temporary_registry_guard_makes_no_edge() {
        // `self.handlers.lock().get(…)` is a statement temporary: the
        // follow-up call two statements later must not create a
        // handlers→cache edge (mirrors CoherenceHub::grant_coverage).
        let fs = files(&[(
            "src/a.rs",
            "impl H {\n fn granted(&self) { let c = self.cache.lock(); }\n fn grant(&self) { let h = self.handlers.lock().get(0); self.granted(); } }\n",
        )]);
        let a = analyze_sources(&fs);
        assert!(
            !a.edges.iter().any(|e| e.from == "a.handlers"),
            "{:?}",
            a.edges
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let fs = files(&[
            ("src/classes.rs", CLASSES),
            (
                "src/a.rs",
                "impl M {\n fn new() -> M { M { state: state_class(0), cache: cache_class(0) } }\n fn f(&self) { let s = self.state.lock(); let c = self.cache.lock(); } }\n",
            ),
        ]);
        let a = analyze_sources(&fs);
        let b = analyze_sources(&fs);
        assert_eq!(a.report_json(), b.report_json());
        assert_eq!(a.report_dot(), b.report_dot());
        assert!(a.report_json().contains("\"rank\": 10"));
        assert!(a.report_dot().starts_with("digraph static_lock_order"));
    }

    #[test]
    fn missing_runtime_edges_subset_logic() {
        let fs = files(&[(
            "src/a.rs",
            "impl M { fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); } }\n",
        )]);
        let a = analyze_sources(&fs);
        let rt = vec![LockEdge {
            from: "a.x",
            to: "a.y",
            from_site: String::new(),
            to_site: String::new(),
        }];
        assert!(a.missing_runtime_edges(&rt).is_empty());
        let rt2 = vec![LockEdge {
            from: "a.y",
            to: "a.x",
            from_site: String::new(),
            to_site: String::new(),
        }];
        assert_eq!(a.missing_runtime_edges(&rt2).len(), 1);
    }
}
