//! `lintcheck` — the repo lint gate. Scans workspace sources for the
//! three rules in `atomio_check::lint` and exits nonzero on any
//! non-allowlisted diagnostic. Run from the repo root (or pass it):
//!
//! ```text
//! cargo run --release -p atomio-check --bin lintcheck [ROOT]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let diags = match atomio_check::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lintcheck: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if diags.is_empty() {
        println!("lintcheck: clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    println!("lintcheck: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
