//! `lintcheck` — the repo lint gate. Runs the token-level rules R1–R3,
//! the static concurrency analyses R4–R6 (guard across blocking call,
//! dropped fault-path `Result`, static lock-order graph), and
//! stale-allowlist detection; exits nonzero on any non-allowlisted
//! diagnostic. Run from the repo root (or pass it):
//!
//! ```text
//! cargo run --release -p atomio-check --bin lintcheck -- \
//!     [ROOT] [--static-report PATH.json] [--dot PATH.dot]
//! ```
//!
//! `--static-report` / `--dot` write the deterministic JSON / Graphviz
//! renderings of the statically derived lock-order graph (compared
//! against `tests/golden/static_report.json` in CI).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut dot_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--static-report" => match args.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lintcheck: --static-report needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--dot" => match args.next() {
                Some(p) => dot_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lintcheck: --dot needs a path");
                    return ExitCode::FAILURE;
                }
            },
            _ => root = PathBuf::from(a),
        }
    }
    let report = match atomio_check::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lintcheck: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, report.analysis.report_json()) {
            eprintln!("lintcheck: cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        println!("lintcheck: static report written to {}", p.display());
    }
    if let Some(p) = dot_path {
        if let Err(e) = std::fs::write(&p, report.analysis.report_dot()) {
            eprintln!("lintcheck: cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        println!("lintcheck: lock graph DOT written to {}", p.display());
    }
    if report.diags.is_empty() {
        println!(
            "lintcheck: clean ({} lock classes, {} static edges)",
            report.analysis.classes.len(),
            report.analysis.edges.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &report.diags {
        println!("{d}");
    }
    println!("lintcheck: {} violation(s)", report.diags.len());
    ExitCode::FAILURE
}
