//! A dependency-free token-level Rust lexer — the foundation the static
//! concurrency analyses ([`crate::scopes`], [`crate::lockgraph`]) and the
//! R1–R3 source lints stand on.
//!
//! It is *not* a full Rust lexer: it produces exactly the token classes
//! the analyses need, but it is **exact** about the things a line scanner
//! gets wrong — nested `/* /* */ */` block comments, raw strings
//! (`r#"..."#` with any number of `#`s, plus `b`/`br`/`c`/`cr` prefixes),
//! escaped quotes, char literals vs lifetimes — so no byte of a string or
//! comment can ever masquerade as code to a rule. Multi-character
//! operators (`::`, `->`, `=>`, `==`, `..`, shifts, compound assignment)
//! are combined, so `=` reliably means assignment to the scope walker.

/// What a token is. String/char/byte literal *content* is deliberately
/// carried only as opaque `text` — rules match on `kind` + exact ident
/// text, so literal content can never false-positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `cache`, `r#type` → `type`).
    Ident,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal (integers, floats, suffixed, exponents).
    Num,
    /// Punctuation / operator, multi-char ops combined (`::`, `->`, `==`…).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }
    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lex `src` into tokens. Comments (line, doc, nested block) vanish;
/// everything else becomes a [`Tok`]. Never panics on malformed input —
/// an unterminated literal simply swallows the rest of the file, which is
/// the conservative behaviour for a lint (rustc will reject the file
/// anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in b[from..to] into `line`.
    fn bump_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments).
        if b[i..].starts_with(b"//") {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments, nested.
        if b[i..].starts_with(b"/*") {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i..].starts_with(b"/*") {
                    depth += 1;
                    i += 2;
                } else if b[i..].starts_with(b"*/") {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump_lines(b, start, i, &mut line);
            continue;
        }
        // Raw strings and prefixed strings: r", r#", br", b", c", cr#"…
        if c == b'r' || c == b'b' || c == b'c' {
            if let Some((end, raw)) = string_prefix_end(b, i) {
                let start_line = line;
                bump_lines(b, i, end, &mut line);
                let _ = raw;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::from_utf8_lossy(&b[i..end]).into_owned(),
                    line: start_line,
                });
                i = end;
                continue;
            }
            if c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                // Byte-char literal b'x'.
                let end = char_lit_end(b, i + 1);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::from_utf8_lossy(&b[i..end]).into_owned(),
                    line,
                });
                i = end;
                continue;
            }
        }
        // Plain strings.
        if c == b'"' {
            let start = i;
            let end = dquote_end(b, i);
            let start_line = line;
            bump_lines(b, start, end, &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&b[start..end]).into_owned(),
                line: start_line,
            });
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char = if i + 1 >= b.len() {
                false
            } else if b[i + 1] == b'\\' {
                true
            } else {
                // 'x' (char) vs 'x (lifetime): char literals close with a
                // quote right after one character (ASCII fast path; a
                // multibyte char closes within 5 bytes).
                (2..=5).any(|k| i + k < b.len() && b[i + k] == b'\'' && !ident_byte(b[i + 1]))
                    || (i + 2 < b.len() && b[i + 2] == b'\'')
            };
            if is_char {
                let end = char_lit_end(b, i);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::from_utf8_lossy(&b[i..end]).into_owned(),
                    line,
                });
                i = end;
            } else {
                let mut j = i + 1;
                while j < b.len() && ident_byte(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Idents and keywords (incl. raw idents r#type).
        if ident_start(c) {
            let start = i;
            if c == b'r' && b[i..].starts_with(b"r#") && i + 2 < b.len() && ident_start(b[i + 2]) {
                i += 2; // raw ident: token text is the bare ident
            }
            let word_start = i;
            while i < b.len() && ident_byte(b[i]) {
                i += 1;
            }
            let _ = start;
            toks.push(Tok {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&b[word_start..i]).into_owned(),
                line,
            });
            continue;
        }
        // Numbers: digits, then a fraction part only if `.` is followed by
        // a digit (so `0..10` stays a range), exponents with signs, and
        // alphanumeric suffixes (`u64`, `f32`, hex digits).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    // `1e-9` / `1E+9`: the sign belongs to the literal.
                    if (d == b'e' || d == b'E')
                        && i + 1 < b.len()
                        && (b[i + 1] == b'+' || b[i + 1] == b'-')
                        && i + 2 < b.len()
                        && b[i + 2].is_ascii_digit()
                        && !b[start..i].contains(&b'x')
                    {
                        i += 2;
                    }
                    i += 1;
                } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                line,
            });
            continue;
        }
        // Operators, longest-match.
        if let Some(op) = OPERATORS
            .iter()
            .find(|op| b[i..].starts_with(op.as_bytes()))
        {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            i += op.len();
            continue;
        }
        // Single-char punctuation.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// End (exclusive) of a char literal starting at `b[i] == '\''`, with
/// escapes (`'\''`, `'\\'`, `'\u{1F600}'`) honoured.
fn char_lit_end(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// End (exclusive) of a double-quoted string starting at `b[i] == '"'`,
/// honouring backslash escapes.
fn dquote_end(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// If `b[i..]` starts a (possibly raw, possibly prefixed) string literal,
/// return `(end_exclusive, was_raw)`. Handles `r"…"`, `r#"…"#` (any #
/// count), `b"…"`, `br#"…"#`, `c"…"`, `cr"…"`.
fn string_prefix_end(b: &[u8], i: usize) -> Option<(usize, bool)> {
    let mut j = i;
    // Optional b/c prefix before r.
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            // Raw string: scan for `"` followed by `hashes` #s.
            j += 1;
            while j < b.len() {
                if b[j] == b'"' {
                    let close = j + 1;
                    if b[close..].len() >= hashes
                        && b[close..close + hashes].iter().all(|&c| c == b'#')
                    {
                        return Some((close + hashes, true));
                    }
                }
                j += 1;
            }
            return Some((b.len(), true));
        }
        return None; // `r` not followed by a string — a raw ident or plain ident
    }
    // b"…" / c"…" (non-raw).
    if j > i && j < b.len() && b[j] == b'"' {
        return Some((dquote_end(b, j), false));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_ops_and_lines() {
        let t = lex("fn f() {\n  x.lock();\n}\n");
        let lock = t.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!(lock.line, 2);
        assert!(t.iter().any(|t| t.is_punct("(")));
    }

    #[test]
    fn strings_hide_their_content() {
        let t = kinds("let s = \".unwrap() /* } */ Mutex<\";");
        assert!(t.iter().filter(|(k, _)| *k == TokKind::Str).count() == 1);
        assert!(!t.iter().any(|(_, s)| s == "unwrap"));
        assert!(!t.iter().any(|(_, s)| s == "Mutex"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        for src in [
            "r\"plain raw with no hashes .unwrap()\"",
            "r#\"quote \" inside .unwrap()\"#",
            "r##\"deep \"# still in .unwrap()\"##",
            "br#\"bytes \" .unwrap()\"#",
            "b\"bytes .unwrap()\"",
            "c\"cstr .unwrap()\"",
        ] {
            let t = kinds(src);
            assert_eq!(t.len(), 1, "{src}: {t:?}");
            assert_eq!(t[0].0, TokKind::Str, "{src}");
        }
        // `r#"…"#` followed by code: the code tokens survive.
        let t = kinds("let x = r#\"s\"#; y.unwrap();");
        assert!(t.iter().any(|(_, s)| s == "unwrap"));
    }

    #[test]
    fn raw_string_escapes_are_not_escapes() {
        // In a raw string a backslash before the closing quote does NOT
        // escape it — `r"\"` ends at the quote.
        let t = kinds(r#"r"\" ; x.unwrap()"#);
        assert!(t.iter().any(|(_, s)| s == "unwrap"), "{t:?}");
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "a".to_string()),
                (TokKind::Ident, "b".to_string())
            ]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let t = kinds("'a' '\\n' '\\'' b'x' &'a str &'static str '_");
        let chars = t.iter().filter(|(k, _)| *k == TokKind::Char).count();
        let lifes = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        assert_eq!(chars, 4, "{t:?}");
        assert_eq!(lifes, 3, "{t:?}");
    }

    #[test]
    fn char_literal_with_brace_does_not_derail() {
        // '{' and '}' as char literals must not look like block delimiters.
        let t = kinds("match c { '{' => a, '}' => b }");
        let braces = t
            .iter()
            .filter(|(k, s)| *k == TokKind::Punct && (s == "{" || s == "}"))
            .count();
        assert_eq!(braces, 2, "{t:?}");
    }

    #[test]
    fn operators_are_combined() {
        let t = kinds("a::b -> c => d == e != f <= g .. h ..= i += j");
        for op in ["::", "->", "=>", "==", "!=", "<=", "..", "..=", "+="] {
            assert!(
                t.iter().any(|(k, s)| *k == TokKind::Punct && s == op),
                "missing {op}: {t:?}"
            );
        }
        // No stray single `=` from splitting `==`.
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Punct && s == "="));
    }

    #[test]
    fn numbers_with_ranges_floats_exponents() {
        let t = kinds("0..10 1.0e9 1e-9 0x2f 42u64 3.5f32 x.0");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "10", "1.0e9", "1e-9", "0x2f", "42u64", "3.5f32", "0"]
        );
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
    }

    #[test]
    fn raw_idents_lex_as_bare_ident() {
        let t = kinds("r#type r#fn normal");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "type".to_string()),
                (TokKind::Ident, "fn".to_string()),
                (TokKind::Ident, "normal".to_string())
            ]
        );
    }

    #[test]
    fn doc_comments_vanish() {
        let t = kinds("/// doc .unwrap()\n//! inner Mutex<\nx");
        assert_eq!(t, vec![(TokKind::Ident, "x".to_string())]);
    }
}
