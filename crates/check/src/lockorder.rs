//! Runtime lock-order analysis: a thin ordered wrapper around the
//! `parking_lot` mutex plus a process-wide lock-order graph with cycle
//! detection.
//!
//! Every [`OrderedMutex`] belongs to a named **class** (all per-handle
//! cache mutexes are one class, all lock-manager state mutexes another).
//! In debug builds each acquisition records, for every class already held
//! by the acquiring thread, a directed class edge `held → acquired`
//! stamped with both acquisition sites (`#[track_caller]` locations).
//! Two disciplines are enforced, and violations panic immediately with
//! both sites:
//!
//! * **Declared ranks** ([`OrderedMutex::with_rank`]) pin a documented
//!   order — e.g. the cache→coverage order of the coherence protocol:
//!   acquiring a ranked mutex while holding one of equal or higher rank
//!   is a violation even on the very first occurrence.
//! * **Discovered cycles**: unranked classes are checked against the
//!   accumulated edge graph — the first acquisition closing a directed
//!   cycle panics with the full edge chain, each edge labelled with the
//!   source locations that created it.
//!
//! Release builds compile the wrapper down to the plain mutex: no
//! thread-local bookkeeping, no graph, no atomics.

use std::ops::{Deref, DerefMut};
#[cfg(debug_assertions)]
use std::panic::Location;

/// One directed class edge of the lock-order graph, with the acquisition
/// sites that first produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub from: &'static str,
    pub to: &'static str,
    /// Where the `from` class was locked (still held at the violation).
    pub from_site: String,
    /// Where the `to` class was locked under it.
    pub to_site: String,
}

/// A directed cycle among lock classes: the edge chain leads from the
/// offending class back to itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    pub edges: Vec<LockEdge>,
}

impl std::fmt::Display for CycleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "lock-order cycle over {} classes:", self.edges.len())?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {}  [{} held at {}; {} locked at {}]",
                e.from, e.to, e.from, e.from_site, e.to, e.to_site
            )?;
        }
        Ok(())
    }
}

/// A pure lock-order graph: class nodes, directed `held → acquired`
/// edges, cycle detection on insertion. This is the data structure the
/// global runtime engine feeds; it is public so tests (and the golden
/// fixtures) can drive it directly without touching process-global state.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    edges: Vec<LockEdge>,
}

impl LockOrderGraph {
    pub fn new() -> Self {
        LockOrderGraph::default()
    }

    pub fn edges(&self) -> &[LockEdge] {
        &self.edges
    }

    /// Whether the directed edge is already recorded.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Record `from → to`; if the new edge closes a directed cycle,
    /// return the full chain (the edge is still recorded, so diagnostics
    /// after a caught panic can see it). Self-edges are cycles of length
    /// one.
    pub fn add_edge(
        &mut self,
        from: &'static str,
        to: &'static str,
        from_site: impl Into<String>,
        to_site: impl Into<String>,
    ) -> Result<(), CycleReport> {
        if !self.has_edge(from, to) {
            self.edges.push(LockEdge {
                from,
                to,
                from_site: from_site.into(),
                to_site: to_site.into(),
            });
        }
        // A cycle through the new edge must come back from `to` to `from`.
        match self.path(to, from) {
            Some(mut chain) => {
                let closing = self
                    .edges
                    .iter()
                    .find(|e| e.from == from && e.to == to)
                    .expect("edge just recorded")
                    .clone();
                chain.insert(0, closing);
                Err(CycleReport { edges: chain })
            }
            None => Ok(()),
        }
    }

    /// A directed edge path `from → … → to`, if one exists (DFS).
    fn path(&self, from: &str, to: &str) -> Option<Vec<LockEdge>> {
        let mut stack = vec![(from, Vec::new())];
        let mut visited = vec![from.to_string()];
        while let Some((node, chain)) = stack.pop() {
            for e in self.edges.iter().filter(|e| e.from == node) {
                let mut next = chain.clone();
                next.push(e.clone());
                if e.to == to {
                    return Some(next);
                }
                if !visited.iter().any(|v| v == e.to) {
                    visited.push(e.to.to_string());
                    stack.push((e.to, next));
                }
            }
        }
        None
    }
}

#[cfg(debug_assertions)]
mod tracking {
    use super::LockOrderGraph;
    use std::cell::RefCell;
    use std::panic::Location;

    pub(super) struct Held {
        pub class: &'static str,
        pub rank: Option<u32>,
        pub site: &'static Location<'static>,
        pub token: u64,
    }

    thread_local! {
        pub(super) static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
    }

    /// The process-wide discovered-edge graph every [`super::OrderedMutex`]
    /// acquisition feeds.
    pub(super) static GRAPH: parking_lot::Mutex<Option<LockOrderGraph>> =
        parking_lot::Mutex::new(None);

    pub(super) fn fresh_token() -> u64 {
        NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            *t += 1;
            *t
        })
    }

    /// Record + check one acquisition against everything this thread
    /// holds. Panics on a declared-rank violation or a discovered cycle.
    pub(super) fn on_acquire(
        class: &'static str,
        rank: Option<u32>,
        site: &'static Location<'static>,
    ) {
        HELD.with(|held| {
            let held = held.borrow();
            for h in held.iter() {
                if h.class == class {
                    panic!(
                        "lock-order violation: {class} acquired at {site} while already \
                         held at {} (same-class nesting is a self-deadlock shape)",
                        h.site
                    );
                }
                if let (Some(hr), Some(nr)) = (h.rank, rank) {
                    if hr >= nr {
                        panic!(
                            "lock-order violation: {class} (rank {nr}) acquired at {site} \
                             while holding {} (rank {hr}) locked at {} — declared order \
                             requires {class} first",
                            h.class, h.site
                        );
                    }
                }
            }
            let mut graph = GRAPH.lock();
            let graph = graph.get_or_insert_with(LockOrderGraph::new);
            for h in held.iter() {
                if graph.has_edge(h.class, class) {
                    continue;
                }
                if let Err(cycle) =
                    graph.add_edge(h.class, class, h.site.to_string(), site.to_string())
                {
                    panic!("lock-order violation at {site}: {cycle}");
                }
            }
        });
    }

    pub(super) fn on_release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards can drop out of acquisition order; search from the top.
            if let Some(i) = held.iter().rposition(|h| h.token == token) {
                held.remove(i);
            }
        });
    }
}

/// A mutex that participates in lock-order analysis under a named class.
/// See the module docs; in release builds this is exactly the wrapped
/// `parking_lot::Mutex`. Deliberately no `Default`: every instance must
/// name its class.
#[derive(Debug)]
pub struct OrderedMutex<T: ?Sized> {
    class: &'static str,
    // Consulted only by the debug-build acquisition checks.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    rank: Option<u32>,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// An unranked class: ordered only by discovered-cycle detection.
    pub const fn new(class: &'static str, value: T) -> Self {
        OrderedMutex {
            class,
            rank: None,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// A ranked class: additionally pinned to the declared order — a
    /// thread holding rank `r` may only acquire ranks strictly above `r`.
    pub const fn with_rank(class: &'static str, rank: u32, value: T) -> Self {
        OrderedMutex {
            class,
            rank: Some(rank),
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    pub fn class(&self) -> &'static str {
        self.class
    }

    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = {
            let site = Location::caller();
            tracking::on_acquire(self.class, self.rank, site);
            let token = tracking::fresh_token();
            tracking::HELD.with(|held| {
                held.borrow_mut().push(tracking::Held {
                    class: self.class,
                    rank: self.rank,
                    site,
                    token,
                })
            });
            token
        };
        OrderedMutexGuard {
            guard: self.inner.lock(),
            #[cfg(debug_assertions)]
            token,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// RAII guard for [`OrderedMutex`]; releases the held-stack entry on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: parking_lot::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<'a, T: ?Sized> OrderedMutexGuard<'a, T> {
    /// The wrapped `parking_lot` guard, for `Condvar::wait`-style APIs
    /// that need it by `&mut`. While a wait has the mutex released the
    /// held-stack still lists it — sound, because the waiting thread
    /// acquires nothing while blocked and holds the mutex again on
    /// return.
    pub fn raw(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        tracking::on_release(self.token);
    }
}

/// Snapshot of the process-wide discovered lock-order edges (diagnostics
/// and tests). Empty in release builds.
pub fn global_edges() -> Vec<LockEdge> {
    #[cfg(debug_assertions)]
    {
        tracking::GRAPH
            .lock()
            .as_ref()
            .map(|g| g.edges().to_vec())
            .unwrap_or_default()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Access to the runtime-discovered lock-order graph as exportable data:
/// the bridge between the runtime engine and the static analyzer's R6
/// cross-validation (`tests/check_static.rs` asserts every edge any
/// schedule discovered is also statically derived).
pub struct Registry;

impl Registry {
    /// Snapshot of the discovered edges (empty in release builds).
    pub fn edges() -> Vec<LockEdge> {
        global_edges()
    }

    /// Deterministic JSON export: `(from, to)` class pairs, sorted and
    /// deduplicated. Acquisition *sites* are deliberately excluded —
    /// which thread first discovers an edge is schedule-dependent, and
    /// the export must be byte-identical across runs that exercise the
    /// same lock pairs.
    pub fn export_json() -> String {
        let mut pairs: Vec<(&'static str, &'static str)> =
            Self::edges().iter().map(|e| (e.from, e.to)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut s = String::from("{\n  \"edges\": [\n");
        let n = pairs.len();
        for (i, (from, to)) in pairs.iter().enumerate() {
            s.push_str(&format!("    {{\"from\": \"{from}\", \"to\": \"{to}\"}}"));
            s.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_nesting_is_clean_and_recorded() {
        let a = OrderedMutex::with_rank("t.clean_a", 1, 0u32);
        let b = OrderedMutex::with_rank("t.clean_b", 2, 0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        assert!(global_edges()
            .iter()
            .any(|e| e.from == "t.clean_a" && e.to == "t.clean_b"));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn rank_violation_panics_with_both_sites() {
        let err = std::thread::spawn(|| {
            let lo = OrderedMutex::with_rank("t.rank_lo", 1, ());
            let hi = OrderedMutex::with_rank("t.rank_hi", 2, ());
            let _g = hi.lock();
            let _h = lo.lock(); // rank 1 under rank 2: violation
        })
        .join()
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.rank_lo"), "{msg}");
        assert!(msg.contains("t.rank_hi"), "{msg}");
        assert!(msg.contains("lockorder.rs"), "both sites named: {msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn discovered_cycle_panics() {
        let err = std::thread::spawn(|| {
            let a = OrderedMutex::new("t.cyc_a", ());
            let b = OrderedMutex::new("t.cyc_b", ());
            {
                let _g = a.lock();
                let _h = b.lock();
            }
            let _g = b.lock();
            let _h = a.lock(); // closes t.cyc_a -> t.cyc_b -> t.cyc_a
        })
        .join()
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(msg.contains("t.cyc_a -> t.cyc_b"), "{msg}");
        assert!(msg.contains("t.cyc_b -> t.cyc_a"), "{msg}");
    }

    #[test]
    fn graph_reports_full_chain() {
        let mut g = LockOrderGraph::new();
        g.add_edge("a", "b", "a.rs:1:1", "b.rs:2:2").unwrap();
        g.add_edge("b", "c", "b.rs:3:3", "c.rs:4:4").unwrap();
        let cycle = g
            .add_edge("c", "a", "c.rs:5:5", "a.rs:6:6")
            .expect_err("c -> a closes the cycle");
        let names: Vec<_> = cycle.edges.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(names, vec![("c", "a"), ("a", "b"), ("b", "c")]);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn registry_export_is_sorted_and_deduped() {
        let a = OrderedMutex::new("t.reg_a", ());
        let b = OrderedMutex::new("t.reg_b", ());
        // Exercise the same pair twice: the export must dedup.
        for _ in 0..2 {
            let _g = a.lock();
            let _h = b.lock();
        }
        let json = Registry::export_json();
        let needle = "{\"from\": \"t.reg_a\", \"to\": \"t.reg_b\"}";
        assert_eq!(json.matches(needle).count(), 1, "{json}");
        assert_eq!(json, Registry::export_json(), "byte-stable across calls");
    }

    #[test]
    fn out_of_order_guard_drops_are_tracked() {
        let a = OrderedMutex::new("t.ooo_a", ());
        let b = OrderedMutex::new("t.ooo_b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before the inner guard
        drop(gb);
        let _ga = a.lock(); // held stack must be clean again
    }
}
