//! Scope and guard-lifetime inference over [`crate::lexer`] token streams.
//!
//! This pass reconstructs, per function, where lock guards are **live**:
//! it tracks `x.lock()` (and guard-returning helper calls) from creation
//! to drop — explicit `drop(g)`, end of enclosing block, `let _ = …`
//! immediate drop, statement-temporary chains (`x.lock().field`), and
//! `if let`/`match` scrutinee temporaries that live across the arms.
//! Every function call and every acquisition is recorded together with a
//! snapshot of the guards live at that point; [`crate::lockgraph`] turns
//! those into the R4 (guard across blocking call), R5 (dropped Result)
//! and R6 (static lock-order graph) analyses.
//!
//! ## Model, and known approximations
//!
//! The inference is intraprocedural and deliberately conservative:
//!
//! - **Shadowing does not drop early**: `let g = a.lock(); let g = b.lock();`
//!   keeps both guards live to end of block (exact Rust semantics).
//! - `let _ = x.lock()` drops immediately; `let _g = x.lock()` is a live
//!   binding (exact Rust semantics).
//! - A chained `x.lock().f()` guard is a statement temporary, dead at `;`
//!   (and at `,` inside match arms). Temporaries in a plain `if`/`while`
//!   condition die when the body block starts; `if let`/`match`/`for`
//!   scrutinee temporaries live across the whole construct (pre-2024
//!   edition drop order, which is what the workspace compiles under).
//! - Closure and nested-block bodies are walked **inline** — a guard held
//!   at the definition site is treated as held inside the closure. For
//!   `thread::spawn`-style deferred closures this over-approximates; for
//!   the `with_*`-style immediately-invoked closures it is exact.
//! - Nested `fn` items are walked with a *fresh* guard context (outer
//!   guards are not considered held inside them), but their acquisitions
//!   are attributed to the enclosing function's record.
//! - Guards stored into struct fields or returned from the function are
//!   tracked only to end of scope/statement like any other binding; the
//!   caller side is covered by treating guard-returning helpers (return
//!   type mentions `MutexGuard`/`OrderedMutexGuard`) as acquisitions at
//!   the call site.
//! - `#[cfg(test)]` items (and `#[test]` functions) are excluded, on the
//!   token level rather than by brace-counting heuristics.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::HashSet;

/// A token tree node: a leaf token (index into the token vec) or a
/// delimited group.
pub enum Node {
    Leaf(usize),
    Group {
        delim: char,
        open: usize,
        close: usize,
        kids: Vec<Node>,
    },
}

/// A guard live at some program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldGuard {
    /// Receiver path tail of the acquisition (`cache` for
    /// `self.cache.lock()`), or `fnret:<name>` for a guard obtained from
    /// helper `<name>()`.
    pub receiver: String,
    /// Line of the acquisition.
    pub line: u32,
}

/// One `…lock()` (or guard-helper) acquisition site.
#[derive(Debug, Clone)]
pub struct Acquire {
    pub receiver: String,
    pub line: u32,
    /// Guards live when this acquisition happens (excluding itself).
    pub held: Vec<HeldGuard>,
}

/// One function/method call site.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    /// Number of arguments at the call site (`self` receivers excluded).
    pub arity: usize,
    pub line: u32,
    /// Receiver ident for `x.f(…)` method calls (`self` included); `None`
    /// for bare calls and chained calls whose receiver is an expression.
    pub recv: Option<String>,
    /// First path segment for `a::b::f(…)` calls (`std`, `mem`, a type…).
    pub qual: Option<String>,
    /// Guards live when the call happens.
    pub held: Vec<HeldGuard>,
}

/// A statement whose final expression is a discarded call result:
/// `foo.try_x();` or `let _ = foo.try_x();`. Whether the callee is
/// fallible is resolved later against workspace function signatures.
#[derive(Debug, Clone)]
pub struct Discard {
    pub name: String,
    pub arity: usize,
    pub line: u32,
    /// Same receiver/path context as [`Call`].
    pub recv: Option<String>,
    pub qual: Option<String>,
}

/// Per-function analysis result.
pub struct FnInfo {
    pub name: String,
    /// Parameter count, `self` excluded — matches call-site arity.
    pub arity: usize,
    pub line: u32,
    pub returns_result: bool,
    pub returns_guard: bool,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<Call>,
    pub discards: Vec<Discard>,
    /// Token index range of the body braces, if the fn has a body.
    pub body: Option<(usize, usize)>,
    /// Name of the type whose `impl` block contains this fn, if any
    /// (`impl Foo` and `impl Trait for Foo` both yield `Foo`).
    pub impl_type: Option<String>,
    /// Declared inside a `trait` block (signature or default body) —
    /// calls to it are dynamic dispatch over every implementation.
    pub in_trait: bool,
}

/// Whole-file analysis: tokens, per-fn records, and a mask of tokens
/// inside `#[cfg(test)]` / `#[test]` items.
pub struct FileModel {
    pub toks: Vec<Tok>,
    pub fns: Vec<FnInfo>,
    pub test_mask: Vec<bool>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "impl", "pub", "use", "mod", "where", "struct", "enum", "trait", "type", "const", "static",
    "ref", "mut", "move", "in", "as", "dyn", "box", "unsafe", "async", "await",
];

/// Analyze one file. `guard_fns` is the set of workspace function names
/// whose return type is a guard (computed by a first signature pass).
pub fn analyze(src: &str, guard_fns: &HashSet<String>) -> FileModel {
    let toks = lex(src);
    let nodes = build_tree(&toks);
    let mut model = FileModel {
        test_mask: vec![false; toks.len()],
        toks,
        fns: Vec::new(),
    };
    scan_items(&nodes, &mut model, guard_fns, false, None, false);
    model
}

/// Build a token tree; unbalanced delimiters degrade gracefully (the
/// stray closer becomes a leaf).
pub fn build_tree(toks: &[Tok]) -> Vec<Node> {
    fn closes(open: char, text: &str) -> bool {
        matches!((open, text), ('(', ")") | ('[', "]") | ('{', "}"))
    }
    fn parse(toks: &[Tok], i: &mut usize, open: Option<(char, usize)>) -> (Vec<Node>, usize) {
        let mut kids = Vec::new();
        while *i < toks.len() {
            let t = &toks[*i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        let delim = t.text.chars().next().unwrap();
                        let start = *i;
                        *i += 1;
                        let (inner, close) = parse(toks, i, Some((delim, start)));
                        kids.push(Node::Group {
                            delim,
                            open: start,
                            close,
                            kids: inner,
                        });
                        continue;
                    }
                    ")" | "]" | "}" => {
                        if let Some((o, _)) = open {
                            if closes(o, &t.text) {
                                let close = *i;
                                *i += 1;
                                return (kids, close);
                            }
                        }
                        // Stray closer: keep as leaf.
                    }
                    _ => {}
                }
            }
            kids.push(Node::Leaf(*i));
            *i += 1;
        }
        (kids, toks.len().saturating_sub(1))
    }
    let mut i = 0;
    let (nodes, _) = parse(toks, &mut i, None);
    nodes
}

fn leaf_text<'a>(toks: &'a [Tok], n: &Node) -> Option<&'a Tok> {
    match n {
        Node::Leaf(i) => Some(&toks[*i]),
        Node::Group { .. } => None,
    }
}

fn node_span(n: &Node) -> (usize, usize) {
    match n {
        Node::Leaf(i) => (*i, *i),
        Node::Group { open, close, .. } => (*open, *close),
    }
}

/// Does an attribute group `#[…]` mark a test item?
fn is_test_attr(toks: &[Tok], kids: &[Node]) -> bool {
    let texts: Vec<&str> = kids
        .iter()
        .filter_map(|n| leaf_text(toks, n))
        .map(|t| t.text.as_str())
        .collect();
    if texts.first() == Some(&"test") {
        return true;
    }
    if texts.first() == Some(&"cfg") {
        // cfg args live in (possibly nested) paren groups: `cfg(test)`,
        // `cfg(all(test, …))`.
        fn any_test(toks: &[Tok], kids: &[Node]) -> bool {
            kids.iter().any(|n| match n {
                Node::Leaf(i) => toks[*i].is_ident("test"),
                Node::Group { kids, .. } => any_test(toks, kids),
            })
        }
        for n in kids {
            if let Node::Group { kids, .. } = n {
                if any_test(toks, kids) {
                    return true;
                }
            }
        }
    }
    false
}

/// Name of the implemented type in an `impl` header: the leaf tokens
/// between `impl` (exclusive, at `nodes[start]`) and the body group at
/// `nodes[body]`. `impl<T> Foo<T>` → `Foo`; `impl Trait for Foo` → `Foo`.
fn impl_type_name(toks: &[Tok], nodes: &[Node], start: usize, body: usize) -> Option<String> {
    let leafs: Vec<&Tok> = nodes[start + 1..body]
        .iter()
        .filter_map(|n| leaf_text(toks, n))
        .collect();
    let mut i = 0;
    // Skip generics right after `impl`.
    if leafs.first().map(|t| t.is_punct("<")) == Some(true) {
        let mut depth = 0i32;
        while i < leafs.len() {
            match leafs[i].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    // `impl Trait for Type`: the type follows `for`.
    if let Some(fi) = leafs.iter().position(|t| t.is_ident("for")) {
        i = fi + 1;
    }
    leafs[i..]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "dyn")
        .map(|t| t.text.clone())
}

/// Walk item lists (file top level, `mod`/`impl`/`trait` bodies),
/// extracting functions and masking test items.
fn scan_items(
    nodes: &[Node],
    model: &mut FileModel,
    guard_fns: &HashSet<String>,
    in_test: bool,
    impl_ctx: Option<&str>,
    in_trait: bool,
) {
    let mut i = 0;
    let mut pending_test = false;
    let mut pending_attr_start: Option<usize> = None;
    while i < nodes.len() {
        // Attribute? (Clone the leaf so `model` stays mutably borrowable.)
        let leaf0 = leaf_text(&model.toks, &nodes[i]).cloned();
        if let Some(t) = leaf0 {
            if t.is_punct("#") {
                let attr_start = node_span(&nodes[i]).0;
                // Optional `!` for inner attributes.
                let mut j = i + 1;
                if let Some(n) = nodes.get(j) {
                    if leaf_text(&model.toks, n).map(|t| t.is_punct("!")) == Some(true) {
                        j += 1;
                    }
                }
                if let Some(Node::Group {
                    delim: '[', kids, ..
                }) = nodes.get(j)
                {
                    if is_test_attr(&model.toks, kids) {
                        pending_test = true;
                        pending_attr_start = Some(attr_start);
                    }
                    i = j + 1;
                    continue;
                }
            }
            if t.is_ident("fn") {
                let (mut info, next) = parse_fn(nodes, i, model, guard_fns);
                info.impl_type = impl_ctx.map(str::to_string);
                info.in_trait = in_trait;
                if pending_test || in_test {
                    let end = info.body.map(|(_, c)| c).unwrap_or_else(|| {
                        node_span(&nodes[next.saturating_sub(1).min(nodes.len() - 1)]).1
                    });
                    let start = pending_attr_start.unwrap_or(node_span(&nodes[i]).0);
                    mask_range(model, start, end);
                } else {
                    model.fns.push(info);
                }
                pending_test = false;
                pending_attr_start = None;
                i = next;
                continue;
            }
            if t.is_ident("mod") || t.is_ident("impl") || t.is_ident("trait") {
                // Find the body group (if any) before the next `;`.
                let mut j = i + 1;
                let mut body: Option<usize> = None;
                while j < nodes.len() {
                    match &nodes[j] {
                        Node::Group { delim: '{', .. } => {
                            body = Some(j);
                            break;
                        }
                        Node::Leaf(k) if model.toks[*k].is_punct(";") => break,
                        _ => j += 1,
                    }
                }
                if let Some(bj) = body {
                    let test_here = in_test || pending_test;
                    let inner_impl = if t.is_ident("impl") {
                        impl_type_name(&model.toks, nodes, i, bj)
                    } else {
                        None
                    };
                    if let Node::Group { kids, close, .. } = &nodes[bj] {
                        if test_here {
                            let start = pending_attr_start.unwrap_or(node_span(&nodes[i]).0);
                            mask_range(model, start, *close);
                        }
                        scan_items(
                            kids,
                            model,
                            guard_fns,
                            test_here,
                            inner_impl.as_deref(),
                            t.is_ident("trait"),
                        );
                    }
                    pending_test = false;
                    pending_attr_start = None;
                    i = bj + 1;
                    continue;
                }
                pending_test = false;
                pending_attr_start = None;
                i = j + 1;
                continue;
            }
        }
        // Any other node: a non-fn item the pending attr applied to runs
        // to the next `;` or `{}` group — clear the flag once we pass one.
        if pending_test {
            let is_terminator = match &nodes[i] {
                Node::Group { delim: '{', .. } => true,
                Node::Leaf(k) => model.toks[*k].is_punct(";"),
                _ => false,
            };
            if is_terminator {
                let start = pending_attr_start.unwrap_or(node_span(&nodes[i]).0);
                mask_range(model, start, node_span(&nodes[i]).1);
                pending_test = false;
                pending_attr_start = None;
            }
        }
        i += 1;
    }
}

fn mask_range(model: &mut FileModel, start: usize, end: usize) {
    let last = model.test_mask.len().saturating_sub(1);
    for m in &mut model.test_mask[start..=end.min(last)] {
        *m = true;
    }
}

/// Parse `fn name<…>(params) -> ret where … { body }` starting at
/// `nodes[i]` (the `fn` leaf). Returns the FnInfo and the next index.
fn parse_fn(
    nodes: &[Node],
    i: usize,
    model: &FileModel,
    guard_fns: &HashSet<String>,
) -> (FnInfo, usize) {
    let toks = &model.toks;
    let mut j = i + 1;
    let (name, line) = match nodes.get(j).and_then(|n| leaf_text(toks, n)) {
        Some(t) if t.kind == TokKind::Ident => (t.text.clone(), t.line),
        _ => (String::new(), 0),
    };
    j += 1;
    // Generics: skip leaf tokens balancing < >.
    if let Some(t) = nodes.get(j).and_then(|n| leaf_text(toks, n)) {
        if t.is_punct("<") {
            let mut depth = 0i32;
            while j < nodes.len() {
                if let Some(t) = leaf_text(toks, &nodes[j]) {
                    match t.text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        ">>" => depth -= 2,
                        "->" | "=>" => {}
                        _ => {}
                    }
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
    }
    // Params.
    let mut arity = 0usize;
    if let Some(Node::Group {
        delim: '(', kids, ..
    }) = nodes.get(j)
    {
        arity = group_arity(toks, kids, true);
        j += 1;
    }
    // Return type tokens until body `{`, `;`, or `where`.
    let mut ret_idents: Vec<String> = Vec::new();
    let mut ret_is_ref = false;
    let mut body: Option<(usize, usize)> = None;
    let mut body_kids: Option<&[Node]> = None;
    let mut in_where = false;
    while j < nodes.len() {
        match &nodes[j] {
            Node::Group {
                delim: '{',
                open,
                close,
                kids,
            } => {
                body = Some((*open, *close));
                body_kids = Some(kids);
                j += 1;
                break;
            }
            Node::Leaf(k) => {
                let t = &toks[*k];
                if t.is_punct(";") {
                    j += 1;
                    break;
                }
                if t.is_ident("where") {
                    in_where = true;
                }
                if !in_where && t.is_punct("&") && ret_idents.is_empty() {
                    // `-> &mut Guard`: a re-borrow of a guard someone else
                    // holds, not a fresh acquisition.
                    ret_is_ref = true;
                }
                if !in_where && t.kind == TokKind::Ident {
                    ret_idents.push(t.text.clone());
                }
                j += 1;
            }
            Node::Group { kids, .. } => {
                // Paren group in return position (`-> impl Fn(…)`): collect
                // idents inside too, they can't hurt.
                if !in_where {
                    for n in kids {
                        if let Some(t) = leaf_text(toks, n) {
                            if t.kind == TokKind::Ident {
                                ret_idents.push(t.text.clone());
                            }
                        }
                    }
                }
                j += 1;
            }
        }
    }
    let returns_result = ret_idents.iter().any(|s| s == "Result" || s == "FsResult");
    let returns_guard = !ret_is_ref
        && ret_idents.iter().any(|s| {
            s == "OrderedMutexGuard"
                || s == "MutexGuard"
                || s == "RwLockReadGuard"
                || s == "RwLockWriteGuard"
        });
    let mut info = FnInfo {
        name,
        arity,
        line,
        returns_result,
        returns_guard,
        acquires: Vec::new(),
        calls: Vec::new(),
        discards: Vec::new(),
        body,
        impl_type: None,
        in_trait: false,
    };
    if let Some(kids) = body_kids {
        let mut w = Walker {
            toks,
            guard_fns,
            scopes: vec![Vec::new()],
            construct_temps: Vec::new(),
            stmt_temps: Vec::new(),
            revive: Vec::new(),
            acquires: Vec::new(),
            calls: Vec::new(),
            discards: Vec::new(),
        };
        w.walk_stmts(kids);
        info.acquires = w.acquires;
        info.calls = w.calls;
        info.discards = w.discards;
    }
    (info, j)
}

/// Count call-site/parameter arity: top-level commas + 1 for non-empty
/// groups; a leading `self`/`&self`/`&mut self` parameter is excluded
/// when `params` is true.
fn group_arity(toks: &[Tok], kids: &[Node], params: bool) -> usize {
    if kids.is_empty() {
        return 0;
    }
    let mut commas = 0usize;
    for n in kids {
        if let Some(t) = leaf_text(toks, n) {
            if t.is_punct(",") {
                commas += 1;
            }
        }
    }
    let mut n = commas + 1;
    if params {
        // Leading self param (`self`, `&self`, `&mut self`, `&'a self`)
        // is not an argument at the call site.
        for k in kids {
            let Some(t) = leaf_text(toks, k) else { break };
            match t.text.as_str() {
                "&" | "mut" => continue,
                _ if t.kind == TokKind::Lifetime => continue,
                "self" => {
                    n -= 1;
                    break;
                }
                _ => break,
            }
        }
    }
    n
}

/// Trailing call of a statement (R5 discard candidate).
struct Tail {
    name: String,
    arity: usize,
    line: u32,
    group_idx: usize,
    recv: Option<String>,
    qual: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum StmtKind {
    Other,
    PlainCond, // if / while — condition temps die at body `{`
    Scrutinee, // if let / while let / match / for — temps live across arms
}

struct Guard {
    receiver: String,
    line: u32,
    name: Option<String>,
}

struct Walker<'a> {
    toks: &'a [Tok],
    guard_fns: &'a HashSet<String>,
    /// Stack of lexical scopes holding named / block-lifetime guards.
    scopes: Vec<Vec<Guard>>,
    /// Stack of scrutinee-temporary frames (`if let` / `match` / `for`).
    construct_temps: Vec<Vec<Guard>>,
    /// Temporaries of the statement currently being scanned.
    stmt_temps: Vec<Guard>,
    /// Per-nested-block frames of outer-scope guards `drop()`ed inside
    /// the block. A conditional drop of a guard that is used again after
    /// the block must have diverged on the dropping path (Rust rejects a
    /// use after move otherwise), so the guard is revived at block exit;
    /// only a drop at the guard's own scope depth kills it for good.
    revive: Vec<Vec<(usize, Guard)>>,
    acquires: Vec<Acquire>,
    calls: Vec<Call>,
    discards: Vec<Discard>,
}

#[derive(Default)]
struct LetCtx {
    active: bool,
    name: Option<String>,
    underscore: bool,
}

impl<'a> Walker<'a> {
    fn held_snapshot(&self) -> Vec<HeldGuard> {
        self.scopes
            .iter()
            .flatten()
            .chain(self.construct_temps.iter().flatten())
            .chain(self.stmt_temps.iter())
            .map(|g| HeldGuard {
                receiver: g.receiver.clone(),
                line: g.line,
            })
            .collect()
    }

    fn kill_named(&mut self, name: &str) {
        let depth = self.scopes.len();
        for (si, scope) in self.scopes.iter_mut().enumerate().rev() {
            if let Some(pos) = scope.iter().rposition(|g| g.name.as_deref() == Some(name)) {
                let g = scope.remove(pos);
                if si + 1 < depth {
                    // Outer-scope guard dropped inside a nested block:
                    // revive it when the block exits (see `revive`).
                    if let Some(frame) = self.revive.last_mut() {
                        frame.push((si, g));
                    }
                }
                return;
            }
        }
    }

    /// Walk a `{}` block: statement segmentation, fresh lexical scope.
    fn walk_block(&mut self, kids: &[Node]) {
        let saved_temps = std::mem::take(&mut self.stmt_temps);
        self.scopes.push(Vec::new());
        self.revive.push(Vec::new());
        self.walk_stmts(kids);
        for (si, g) in self.revive.pop().expect("revive frame just pushed") {
            if let Some(scope) = self.scopes.get_mut(si) {
                scope.push(g);
            }
        }
        self.scopes.pop();
        self.stmt_temps = saved_temps;
    }

    /// Walk expression-context nodes (paren/bracket group contents):
    /// guard events fire, temporaries accumulate into the current
    /// statement, but no statement segmentation happens.
    fn walk_expr_nodes(&mut self, kids: &[Node]) {
        let mut i = 0;
        while i < kids.len() {
            i = self.step(kids, i, &mut LetCtx::default(), false, &mut None);
        }
    }

    /// Walk a statement list (block body or match-arm soup).
    fn walk_stmts(&mut self, kids: &[Node]) {
        let mut i = 0;
        while i < kids.len() {
            i = self.walk_one_stmt(kids, i);
        }
    }

    /// Walk one statement starting at `kids[i]`; returns index after it.
    fn walk_one_stmt(&mut self, kids: &[Node], start: usize) -> usize {
        // Classify the statement.
        let first = kids.get(start).and_then(|n| leaf_text(self.toks, n));
        let second = kids.get(start + 1).and_then(|n| leaf_text(self.toks, n));
        let kind = match (
            first.map(|t| t.text.as_str()),
            second.map(|t| t.text.as_str()),
        ) {
            (Some("if"), Some("let")) | (Some("while"), Some("let")) => StmtKind::Scrutinee,
            (Some("match"), _) | (Some("for"), _) => StmtKind::Scrutinee,
            (Some("if"), _) | (Some("while"), _) => StmtKind::PlainCond,
            _ => StmtKind::Other,
        };
        let starts_with_return = matches!(
            first.map(|t| t.text.as_str()),
            Some("return") | Some("break")
        );

        // Nested `fn` item: walk its body with a fresh guard context.
        if first.map(|t| t.is_ident("fn")) == Some(true) {
            let mut j = start + 1;
            while j < kids.len() {
                if let Node::Group {
                    delim: '{',
                    kids: body,
                    ..
                } = &kids[j]
                {
                    let saved_scopes = std::mem::take(&mut self.scopes);
                    let saved_construct = std::mem::take(&mut self.construct_temps);
                    let saved_temps = std::mem::take(&mut self.stmt_temps);
                    let saved_revive = std::mem::take(&mut self.revive);
                    self.scopes.push(Vec::new());
                    self.walk_stmts(body);
                    self.scopes = saved_scopes;
                    self.construct_temps = saved_construct;
                    self.stmt_temps = saved_temps;
                    self.revive = saved_revive;
                    return j + 1;
                }
                if let Some(t) = leaf_text(self.toks, &kids[j]) {
                    if t.is_punct(";") {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return j;
        }

        if kind == StmtKind::Scrutinee {
            self.construct_temps.push(Vec::new());
        }

        let mut let_ctx = LetCtx::default();
        let mut tail: Option<Tail> = None;
        let mut has_assign = false;
        let mut i = start;
        let mut seen_body = false; // for PlainCond: condition over?
        let scrutinee_frame = kind == StmtKind::Scrutinee;

        while i < kids.len() {
            match &kids[i] {
                Node::Leaf(k) => {
                    let t = &self.toks[*k];
                    if t.is_punct(";") || t.is_punct(",") {
                        // Statement end, or match-arm / struct-literal
                        // separator — only a `;` discards the value.
                        let is_semi = t.is_punct(";");
                        self.end_statement(
                            &let_ctx,
                            &tail,
                            has_assign,
                            starts_with_return,
                            i,
                            is_semi,
                        );
                        if scrutinee_frame {
                            self.construct_temps.pop();
                        }
                        return i + 1;
                    }
                    if t.is_ident("let") && !let_ctx.active {
                        let_ctx = self.peek_let_pattern(kids, i + 1);
                        i += 1;
                        continue;
                    }
                    if t.kind == TokKind::Punct
                        && t.text.ends_with('=')
                        && !matches!(t.text.as_str(), "==" | "!=" | "<=" | ">=" | "=>")
                    {
                        // Assignment at statement level: value is used
                        // (for `let` the binding consumes it instead).
                        if !let_ctx.active || t.text != "=" {
                            has_assign = true;
                        }
                        if let_ctx.active && t.text == "=" {
                            // The `=` of the let itself; subsequent `=`
                            // would be inside sub-exprs (groups).
                        }
                        i += 1;
                        continue;
                    }
                    // Guard/call events, shared with expression contexts.
                    i = self.step(kids, i, &mut let_ctx, true, &mut tail);
                    continue;
                }
                Node::Group {
                    delim, kids: gkids, ..
                } => {
                    if *delim == '{' {
                        if kind == StmtKind::PlainCond && !seen_body {
                            // Condition temporaries die before the body.
                            self.stmt_temps.clear();
                            seen_body = true;
                        }
                        if scrutinee_frame && !seen_body {
                            // Scrutinee temporaries (`match x.lock().s() {`)
                            // live across the arms: move them out of the
                            // statement frame (which `walk_block` hides)
                            // into the construct frame.
                            let temps = std::mem::take(&mut self.stmt_temps);
                            if let Some(frame) = self.construct_temps.last_mut() {
                                frame.extend(temps);
                            }
                            seen_body = true;
                        }
                        self.walk_block(gkids);
                        // `else` / `else if` continue the statement.
                        let next_is_else = kids
                            .get(i + 1)
                            .and_then(|n| leaf_text(self.toks, n))
                            .map(|t| t.is_ident("else"))
                            == Some(true);
                        if next_is_else {
                            i += 1;
                            continue;
                        }
                        if kind != StmtKind::Other {
                            // Block-terminated statement (if/match/for/…).
                            self.stmt_temps.clear();
                            if scrutinee_frame {
                                self.construct_temps.pop();
                            }
                            return i + 1;
                        }
                        // Expression block in Other statement (e.g.
                        // `let x = { … };`): keep scanning to the `;`.
                        i += 1;
                        continue;
                    }
                    // Paren / bracket group in statement context that was
                    // not consumed by a call in `step`: tuple, index, …
                    i = self.step(kids, i, &mut let_ctx, true, &mut tail);
                    continue;
                }
            }
        }
        // Ran off the end (tail expression without `;`).
        self.stmt_temps.clear();
        if scrutinee_frame {
            self.construct_temps.pop();
        }
        kids.len()
    }

    /// Classify the pattern after `let` (read-only lookahead).
    fn peek_let_pattern(&self, kids: &[Node], mut j: usize) -> LetCtx {
        let mut idents: Vec<String> = Vec::new();
        let mut complex = false;
        while j < kids.len() {
            match &kids[j] {
                Node::Leaf(k) => {
                    let t = &self.toks[*k];
                    if t.is_punct("=") || t.is_punct(":") || t.is_punct(";") {
                        break;
                    }
                    match t.text.as_str() {
                        "mut" | "ref" => {}
                        _ if t.kind == TokKind::Ident => idents.push(t.text.clone()),
                        "_" => idents.push("_".to_string()),
                        _ => complex = true,
                    }
                }
                Node::Group { .. } => complex = true,
            }
            j += 1;
        }
        if !complex && idents.len() == 1 {
            if idents[0] == "_" {
                return LetCtx {
                    active: true,
                    name: None,
                    underscore: true,
                };
            }
            return LetCtx {
                active: true,
                name: Some(idents[0].clone()),
                underscore: false,
            };
        }
        // `_` lexes as Ident("_")? No: `_` is ident-start so it lexes as
        // Ident — handled above. Complex patterns: bind conservatively
        // (block lifetime, unnamed).
        LetCtx {
            active: true,
            name: None,
            underscore: idents.len() == 1 && idents[0] == "_",
        }
    }

    /// Handle one node in expression position: acquisitions, calls,
    /// drop(), group recursion. Returns the next index.
    fn step(
        &mut self,
        kids: &[Node],
        i: usize,
        let_ctx: &mut LetCtx,
        at_stmt_level: bool,
        tail: &mut Option<Tail>,
    ) -> usize {
        let toks = self.toks;
        match &kids[i] {
            Node::Leaf(k) => {
                let t = &toks[*k];
                // `?` after the tail call: result is used.
                if t.is_punct("?") {
                    *tail = None;
                    return i + 1;
                }
                if t.kind != TokKind::Ident {
                    return i + 1;
                }
                let name = t.text.as_str();
                let next_group = match kids.get(i + 1) {
                    Some(Node::Group {
                        delim: '(',
                        kids: g,
                        ..
                    }) => Some(g),
                    _ => None,
                };
                let Some(args) = next_group else {
                    return i + 1;
                };
                if KEYWORDS.contains(&name) {
                    // `while (…)`-style: just walk the group.
                    self.walk_expr_nodes(args);
                    return i + 2;
                }
                let prev_is_dot =
                    i > 0 && leaf_text(toks, &kids[i - 1]).map(|t| t.is_punct(".")) == Some(true);
                // drop(g) / mem::drop(g): kill the named guard.
                if name == "drop" && !prev_is_dot {
                    if args.len() == 1 {
                        if let Some(t) = leaf_text(toks, &args[0]) {
                            if t.kind == TokKind::Ident {
                                let victim = t.text.clone();
                                self.kill_named(&victim);
                                return i + 2;
                            }
                        }
                    }
                    self.walk_expr_nodes(args);
                    return i + 2;
                }
                // `.lock()` acquisition.
                if name == "lock" && prev_is_dot && args.is_empty() {
                    let receiver = self.receiver_of(kids, i - 1);
                    let held = self.held_snapshot();
                    self.acquires.push(Acquire {
                        receiver: receiver.clone(),
                        line: t.line,
                        held,
                    });
                    self.register_guard(kids, i + 2, let_ctx, receiver, t.line);
                    return i + 2;
                }
                // Guard-returning helper.
                if self.guard_fns.contains(name) {
                    let receiver = format!("fnret:{name}");
                    self.walk_expr_nodes(args);
                    let held = self.held_snapshot();
                    let (recv, qual) = self.call_context(kids, i);
                    self.acquires.push(Acquire {
                        receiver: receiver.clone(),
                        line: t.line,
                        held: held.clone(),
                    });
                    let arity = group_arity(toks, args, false);
                    self.calls.push(Call {
                        name: name.to_string(),
                        arity,
                        line: t.line,
                        recv,
                        qual,
                        held,
                    });
                    self.register_guard(kids, i + 2, let_ctx, receiver, t.line);
                    return i + 2;
                }
                // Ordinary call. Arguments evaluate first, so a guard
                // temporary created in an argument IS live during the
                // call — walk args before snapshotting.
                let arity = group_arity(toks, args, false);
                self.walk_expr_nodes(args);
                let (recv, qual) = self.call_context(kids, i);
                self.calls.push(Call {
                    name: name.to_string(),
                    arity,
                    line: t.line,
                    recv: recv.clone(),
                    qual: qual.clone(),
                    held: self.held_snapshot(),
                });
                if at_stmt_level {
                    *tail = Some(Tail {
                        name: name.to_string(),
                        arity,
                        line: t.line,
                        group_idx: i + 1,
                        recv,
                        qual,
                    });
                }
                i + 2
            }
            Node::Group {
                delim: '{',
                kids: g,
                ..
            } => {
                self.walk_block(g);
                i + 1
            }
            Node::Group { kids: g, .. } => {
                self.walk_expr_nodes(g);
                i + 1
            }
        }
    }

    /// After an acquisition at `kids[after]`-1 (the args group), decide
    /// the guard's lifetime from what follows and the let context.
    fn register_guard(
        &mut self,
        kids: &[Node],
        after: usize,
        let_ctx: &LetCtx,
        receiver: String,
        line: u32,
    ) {
        let chained = match kids.get(after) {
            Some(n) => {
                leaf_text(self.toks, n).map(|t| t.is_punct(".") || t.is_punct("?")) == Some(true)
            }
            None => false,
        };
        if chained {
            // `x.lock().f()` — statement temporary.
            self.stmt_temps.push(Guard {
                receiver,
                line,
                name: None,
            });
            return;
        }
        if let_ctx.active {
            if let_ctx.underscore {
                // `let _ = x.lock();` — dropped immediately.
                return;
            }
            if let Some(name) = &let_ctx.name {
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .push(Guard {
                        receiver,
                        line,
                        name: Some(name.clone()),
                    });
                return;
            }
            // Complex pattern: block lifetime, unnameable.
            self.scopes
                .last_mut()
                .expect("scope stack never empty")
                .push(Guard {
                    receiver,
                    line,
                    name: None,
                });
            return;
        }
        // Bare temporary; scrutinee frames capture it if active.
        if let Some(frame) = self.construct_temps.last_mut() {
            frame.push(Guard {
                receiver,
                line,
                name: None,
            });
        } else {
            self.stmt_temps.push(Guard {
                receiver,
                line,
                name: None,
            });
        }
    }

    /// Receiver / path context of the call whose name is at `kids[i]`:
    /// `x.f(…)` → `(Some("x"), None)`; `a::b::f(…)` → `(None, Some("a"))`
    /// (first path segment); anything else → `(None, None)`.
    fn call_context(&self, kids: &[Node], i: usize) -> (Option<String>, Option<String>) {
        if i == 0 {
            return (None, None);
        }
        let Some(prev) = leaf_text(self.toks, &kids[i - 1]) else {
            return (None, None);
        };
        if prev.is_punct(".") {
            let recv = if i >= 2 {
                leaf_text(self.toks, &kids[i - 2])
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
            } else {
                None
            };
            return (recv, None);
        }
        if prev.is_punct("::") {
            // Walk back over `ident :: ident :: …` to the first segment.
            let mut sep = i - 1; // index of a `::`
            let mut first = None;
            while sep >= 1 {
                match leaf_text(self.toks, &kids[sep - 1]) {
                    Some(t) if t.kind == TokKind::Ident => {
                        first = Some(t.text.clone());
                        if sep >= 3
                            && leaf_text(self.toks, &kids[sep - 2]).map(|t| t.is_punct("::"))
                                == Some(true)
                        {
                            sep -= 2;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            return (None, first);
        }
        (None, None)
    }

    /// Receiver path tail for `…X.lock()`: `kids[dot]` is the `.` before
    /// `lock`; look one node further back for the receiver ident.
    fn receiver_of(&self, kids: &[Node], dot: usize) -> String {
        if dot == 0 {
            return "?".to_string();
        }
        match leaf_text(self.toks, &kids[dot - 1]) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => "?".to_string(),
        }
    }

    /// Statement finished at `kids[semi]`: clear temporaries, record an
    /// R5 discard candidate if the final expression was a call whose
    /// result nothing consumed.
    fn end_statement(
        &mut self,
        let_ctx: &LetCtx,
        tail: &Option<Tail>,
        has_assign: bool,
        starts_with_return: bool,
        semi: usize,
        is_semi: bool,
    ) {
        self.stmt_temps.clear();
        if !is_semi {
            return; // `,`: match arm / struct field — value is used
        }
        let Some(tail) = tail else {
            return;
        };
        // The call's group must be the last node before the terminator.
        if tail.group_idx + 1 != semi {
            return;
        }
        if starts_with_return || has_assign {
            return;
        }
        if let_ctx.active && !let_ctx.underscore {
            return; // bound: used
        }
        self.discards.push(Discard {
            name: tail.name.clone(),
            arity: tail.arity,
            line: tail.line,
            recv: tail.recv.clone(),
            qual: tail.qual.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        analyze(src, &HashSet::new())
    }

    fn only_fn(m: &FileModel) -> &FnInfo {
        assert_eq!(m.fns.len(), 1, "expected one fn");
        &m.fns[0]
    }

    /// Calls to `name` and the receivers held at each.
    fn held_at<'m>(f: &'m FnInfo, callee: &str) -> Vec<Vec<&'m str>> {
        f.calls
            .iter()
            .filter(|c| c.name == callee)
            .map(|c| c.held.iter().map(|h| h.receiver.as_str()).collect())
            .collect()
    }

    #[test]
    fn named_guard_lives_to_block_end() {
        let m = model("fn f(&self) { let g = self.cache.lock(); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["cache"]]);
    }

    #[test]
    fn early_drop_releases() {
        let m = model("fn f(&self) { let g = self.cache.lock(); drop(g); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn conditional_drop_in_nested_block_revives_at_exit() {
        // The drop path must diverge (Rust rejects the use after move
        // otherwise), so the guard is live again after the block — but
        // dead for the remainder of the block itself.
        let m = model(
            "fn f(&self) { let g = self.cache.lock(); if self.empty() { drop(g); self.direct(); return; } self.barrier(); }",
        );
        let f = only_fn(&m);
        assert_eq!(held_at(f, "direct"), vec![Vec::<&str>::new()]);
        assert_eq!(held_at(f, "barrier"), vec![vec!["cache"]]);
    }

    #[test]
    fn let_underscore_drops_immediately() {
        let m = model("fn f(&self) { let _ = self.cache.lock(); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn underscore_named_binding_is_live() {
        let m = model("fn f(&self) { let _g = self.cache.lock(); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["cache"]]);
    }

    #[test]
    fn shadowing_keeps_both_guards_live() {
        let m =
            model("fn f(&self) { let g = self.a.lock(); let g = self.b.lock(); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["a", "b"]]);
    }

    #[test]
    fn drop_after_shadowing_kills_newest() {
        let m = model(
            "fn f(&self) { let g = self.a.lock(); let g = self.b.lock(); drop(g); self.barrier(); }",
        );
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["a"]]);
    }

    #[test]
    fn nested_block_scopes_guard() {
        let m = model("fn f(&self) { { let g = self.cache.lock(); } self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn chained_temp_dies_at_statement_end() {
        let m = model("fn f(&self) { let n = self.cache.lock().len(); self.barrier(); }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
        // A guard temporary created in an argument is live during the
        // enclosing call (args evaluate first, temp drops at `;`).
        let m2 = model("fn f(&self) { self.use_it(self.cache.lock().len()); self.after(); }");
        let f2 = only_fn(&m2);
        assert_eq!(held_at(f2, "use_it"), vec![vec!["cache"]]);
        assert_eq!(held_at(f2, "after"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn guard_from_helper_fn() {
        let mut guard_fns = HashSet::new();
        guard_fns.insert("locked_state".to_string());
        let m = analyze(
            "fn f(&self) { let g = self.locked_state(); self.barrier(); }",
            &guard_fns,
        );
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["fnret:locked_state"]]);
    }

    #[test]
    fn if_let_scrutinee_temp_lives_across_arms() {
        let m = model(
            "fn f(&self) { if let Some(x) = self.cache.lock().peek() { self.barrier(); } self.after(); }",
        );
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["cache"]]);
        assert_eq!(held_at(f, "after"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn plain_if_condition_temp_dies_at_body() {
        let m = model("fn f(&self) { if self.cache.lock().dirty() { self.barrier(); } }");
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
    }

    #[test]
    fn match_scrutinee_temp_lives_across_arms() {
        let m = model(
            "fn f(&self) { match self.cache.lock().state() { 0 => self.barrier(), _ => {} } }",
        );
        let f = only_fn(&m);
        assert_eq!(held_at(f, "barrier"), vec![vec!["cache"]]);
    }

    #[test]
    fn acquisition_records_held_guards() {
        let m = model("fn f(&self) { let a = self.x.lock(); let b = self.y.lock(); }");
        let f = only_fn(&m);
        assert_eq!(f.acquires.len(), 2);
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].held.len(), 1);
        assert_eq!(f.acquires[1].held[0].receiver, "x");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let m = model(
            "fn real(&self) { self.x.lock(); }\n#[cfg(test)]\nmod tests {\n  fn fake(&self) { self.y.lock(); }\n}\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
        // The mask covers the test mod's tokens.
        let y_tok = m.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(m.test_mask[y_tok]);
    }

    #[test]
    fn discard_detection() {
        let m = model("fn f(&self) { self.try_sync(); let _ = self.try_flush(2); }");
        let f = only_fn(&m);
        let names: Vec<_> = f
            .discards
            .iter()
            .map(|d| (d.name.as_str(), d.arity))
            .collect();
        assert_eq!(names, vec![("try_sync", 0), ("try_flush", 1)]);
    }

    #[test]
    fn question_mark_and_bindings_are_not_discards() {
        let m = model(
            "fn f(&self) -> Result<(), E> { self.try_sync()?; let r = self.try_flush(2); r?; Ok(()) }",
        );
        let f = only_fn(&m);
        assert!(f.discards.is_empty(), "{:?}", f.discards);
        assert!(f.returns_result);
    }

    #[test]
    fn arity_excludes_self() {
        let m = model("fn f(&self, a: u32, b: u32) {} fn g(x: u32) {}");
        assert_eq!(m.fns[0].arity, 2);
        assert_eq!(m.fns[1].arity, 1);
    }

    #[test]
    fn guard_returning_signature_detected() {
        let m = model("fn f(&self) -> OrderedMutexGuard<'_, State> { self.state.lock() }");
        assert!(m.fns[0].returns_guard);
    }

    #[test]
    fn nested_fn_gets_fresh_guard_context() {
        let m = model(
            "fn outer(&self) { let g = self.cache.lock(); fn inner(c: &C) { c.barrier(); } self.after(); }",
        );
        let f = only_fn(&m);
        // barrier inside `inner` must NOT see outer's guard...
        assert_eq!(held_at(f, "barrier"), vec![Vec::<&str>::new()]);
        // ...but outer's own calls still do.
        assert_eq!(held_at(f, "after"), vec![vec!["cache"]]);
    }
}
