//! `atomio-check` — the correctness-analysis layer.
//!
//! Three engines, one goal: make the atomicity guarantees the rest of
//! the workspace *claims* (paper §2.1 torn-write freedom, PR 5's
//! revocation visibility contract, the documented cache → coverage lock
//! order) mechanically checkable.
//!
//! * [`hb`] — a vector-clock happens-before detector over recorded
//!   [`atomio_trace`] event streams: reports conflicting overlapping
//!   byte accesses with no grant-release→acquire, revocation-flush, or
//!   collective edge between them.
//! * [`lockorder`] — [`OrderedMutex`], a drop-in mutex wrapper that
//!   feeds a global runtime lock-order graph with cycle detection
//!   (debug/test builds only; release builds compile to a plain mutex).
//! * [`lint`] — the `lintcheck` source gate: no `unwrap`/`expect` on
//!   fault-reachable paths, no bare `Mutex` in pfs, no unjustified
//!   `Ordering::Relaxed`.

pub mod hb;
pub mod jsonv;
pub mod lint;
pub mod lockorder;

pub use hb::{check_chrome_json, check_events, AccessSite, Finding, HbReport};
pub use lint::{lint_source, lint_workspace, parse_allowlist, AllowEntry, LintDiag};
pub use lockorder::{
    global_edges, CycleReport, LockEdge, LockOrderGraph, OrderedMutex, OrderedMutexGuard,
};
