//! `atomio-check` — the correctness-analysis layer.
//!
//! Three engines, one goal: make the atomicity guarantees the rest of
//! the workspace *claims* (paper §2.1 torn-write freedom, PR 5's
//! revocation visibility contract, the documented cache → coverage lock
//! order) mechanically checkable.
//!
//! * [`hb`] — a vector-clock happens-before detector over recorded
//!   [`atomio_trace`] event streams: reports conflicting overlapping
//!   byte accesses with no grant-release→acquire, revocation-flush, or
//!   collective edge between them.
//! * [`lockorder`] — [`OrderedMutex`], a drop-in mutex wrapper that
//!   feeds a global runtime lock-order graph with cycle detection
//!   (debug/test builds only; release builds compile to a plain mutex).
//! * [`lint`] — the `lintcheck` source gate: token-level rules R1–R3
//!   (no `unwrap`/`expect` on fault-reachable paths, no bare `Mutex` in
//!   pfs, no unjustified `Ordering::Relaxed`) plus stale-allowlist
//!   detection.
//! * [`lexer`] / [`scopes`] / [`lockgraph`] — the static concurrency
//!   analyzer: a dependency-free token-level Rust lexer, guard-lifetime
//!   inference, and the R4–R6 analyses (guard held across a blocking
//!   call; silently dropped fault-path `Result`s; a statically extracted
//!   lock-order graph checked for acyclicity, rank respect, and
//!   runtime-edge coverage).

pub mod hb;
pub mod jsonv;
pub mod lexer;
pub mod lint;
pub mod lockgraph;
pub mod lockorder;
pub mod scopes;

pub use hb::{check_chrome_json, check_events, AccessSite, Finding, HbReport};
pub use lint::{
    check_workspace, lint_source, lint_workspace, parse_allowlist, workspace_sources, AllowEntry,
    LintDiag, WorkspaceReport,
};
pub use lockgraph::{
    analyze_sources, analyze_workspace, StaticAnalysis, StaticEdge, BLOCKING_SEEDS,
};
pub use lockorder::{
    global_edges, CycleReport, LockEdge, LockOrderGraph, OrderedMutex, OrderedMutexGuard, Registry,
};
