//! A minimal JSON *value* parser for importing Chrome-trace files into the
//! happens-before checker. `atomio_trace::validate_json` is grammar-only
//! (it builds no tree); this module builds just enough of one — objects,
//! arrays, strings, and numbers kept as raw text so `ts` microsecond
//! values with three decimals convert back to exact virtual nanoseconds.

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The raw number text, unconverted (exactness matters for `ts`).
    Number(String),
    String(String),
    Array(Vec<Value>),
    /// Members in document order, duplicates kept — trace-event `args`
    /// encode byte footprints as repeated `"lo"`/`"len"` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// First member named `key` (objects keep duplicates).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// All members of an object, in document order.
    pub fn entries(&self) -> &[(String, Value)] {
        match self {
            Value::Object(m) => m,
            _ => &[],
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value of a JSON number (no fraction, no exponent).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// A Chrome-trace timestamp — microseconds, rendered by the exporter
    /// as an integer or with exactly a decimal fraction — as exact
    /// nanoseconds. `1234.567` → 1_234_567.
    pub fn as_ns(&self) -> Option<u64> {
        let Value::Number(n) = self else { return None };
        let (whole, frac) = match n.split_once('.') {
            Some((w, f)) => (w, f),
            None => (n.as_str(), ""),
        };
        let us: u64 = whole.parse().ok()?;
        let mut ns = 0u64;
        for (i, c) in frac.chars().enumerate() {
            if i >= 3 || !c.is_ascii_digit() {
                return None;
            }
            ns = ns * 10 + (c as u64 - '0' as u64);
        }
        ns *= 10u64.pow(3 - frac.len().min(3) as u32);
        Some(us * 1000 + ns)
    }
}

pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))?;
    Ok(Value::Number(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(c);
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut map = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        map.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a":[1,2.5,"x\n"],"b":{"c":true,"d":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn ts_microseconds_convert_exactly() {
        let v = parse(r#"{"ts":1234.567,"t2":42,"t3":7.5}"#).unwrap();
        assert_eq!(v.get("ts").unwrap().as_ns(), Some(1_234_567));
        assert_eq!(v.get("t2").unwrap().as_ns(), Some(42_000));
        assert_eq!(v.get("t3").unwrap().as_ns(), Some(7_500));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
    }
}
