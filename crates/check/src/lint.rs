//! The repo lint pass: a dependency-free line scanner enforcing three
//! rules the type system cannot.
//!
//! * **R1 — no `unwrap()`/`expect()` in fault-reachable modules.** The
//!   fault injector can surface `FsError` on any server round-trip, so
//!   code in the fault/journal/coherence/file/server/cache/storage layer
//!   must propagate errors through the `try_`/`FsError` plumbing, not
//!   panic.
//! * **R2 — no bare `Mutex`/`RwLock` in `crates/pfs`.** All pfs locking
//!   goes through `atomio_check::OrderedMutex` so the runtime lock-order
//!   graph sees every acquisition (the documented cache → coverage order,
//!   the managers' state-mutex discipline).
//! * **R3 — no `Ordering::Relaxed` outside the allowlist.** A relaxed
//!   cross-thread flag is how the PR 5 coherence bug family starts; every
//!   surviving use must be justified in `lintcheck.allow`.
//!
//! Test code is exempt: `#[cfg(test)]` modules (tracked by brace depth),
//! `tests/` trees, and doc comments / string literals / comments never
//! match. Remaining intentional uses are suppressed by an allowlist file
//! (`lintcheck.allow` at the repo root): `path :: substring` per line,
//! where a diagnostic is suppressed if its path ends with `path` and its
//! source line contains `substring`.

use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub source: String,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path,
            self.line,
            self.rule,
            self.message,
            self.source.trim()
        )
    }
}

/// One `path-suffix :: substring` allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub path_suffix: String,
    pub needle: String,
}

pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (p, n) = l.split_once("::")?;
            Some(AllowEntry {
                path_suffix: p.trim().to_string(),
                needle: n.trim().to_string(),
            })
        })
        .collect()
}

fn allowed(allow: &[AllowEntry], path: &str, source: &str) -> bool {
    allow
        .iter()
        .any(|e| path.ends_with(&e.path_suffix) && source.contains(&e.needle))
}

/// Modules where a panic is a correctness bug: everything the fault
/// injector or crash/replay path can reach.
const FAULT_REACHABLE: &[&str] = &[
    "crates/pfs/src/fault.rs",
    "crates/pfs/src/journal.rs",
    "crates/pfs/src/coherence.rs",
    "crates/pfs/src/file.rs",
    "crates/pfs/src/server.rs",
    "crates/pfs/src/cache.rs",
    "crates/pfs/src/storage.rs",
];

fn is_fault_reachable(path: &str) -> bool {
    FAULT_REACHABLE.iter().any(|m| path.ends_with(m))
}

fn is_pfs_src(path: &str) -> bool {
    path.contains("crates/pfs/src/")
}

/// Strip comments and string literals from one line, tracking multi-line
/// state. Keeps byte positions loosely (replaced with spaces) so column
/// content checks stay meaningful.
#[derive(Default)]
struct Stripper {
    in_block_comment: bool,
}

impl Stripper {
    fn strip(&mut self, line: &str) -> String {
        let b = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            if self.in_block_comment {
                if b[i..].starts_with(b"*/") {
                    self.in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            match b[i] {
                b'/' if b[i..].starts_with(b"//") => break, // line comment
                b'/' if b[i..].starts_with(b"/*") => {
                    self.in_block_comment = true;
                    i += 2;
                    out.push(' ');
                }
                b'"' => {
                    // Skip the string literal (escapes honoured; raw
                    // strings are close enough for our substrings).
                    i += 1;
                    out.push('"');
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.push('"');
                }
                b'\'' if i + 2 < b.len() && (b[i + 1] == b'\\' || b[i + 2] == b'\'') => {
                    // char literal ('x' or '\n'); lifetimes ('a) fall through
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1; // opening quote handled; find closing
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.push(' ');
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }
}

/// Lint one file's source text. `path` is the repo-relative path used in
/// diagnostics and rule scoping.
pub fn lint_source(path: &str, text: &str, allow: &[AllowEntry]) -> Vec<LintDiag> {
    let mut diags = Vec::new();
    let mut stripper = Stripper::default();
    // `#[cfg(test)]`-gated regions: once seen, the next `{` opens a
    // region that closes when brace depth returns to its pre-region
    // level. Good enough for `mod tests { ... }` and cfg-gated impls.
    let mut pending_test_attr = false;
    let mut test_region_depth: Option<i64> = None;
    let mut depth: i64 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let line = stripper.strip(raw);
        let lineno = idx + 1;

        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            pending_test_attr = true;
        }
        let in_test = test_region_depth.is_some();

        let mut push = |rule: &'static str, message: String| {
            if !allowed(allow, path, raw) {
                diags.push(LintDiag {
                    path: path.to_string(),
                    line: lineno,
                    rule,
                    message,
                    source: raw.to_string(),
                });
            }
        };

        if !in_test {
            if is_fault_reachable(path) && (line.contains(".unwrap()") || line.contains(".expect("))
            {
                push(
                    "R1",
                    "unwrap()/expect() in a fault-reachable module — use the try_/FsError plumbing"
                        .into(),
                );
            }
            if is_pfs_src(path)
                && (line.contains("Mutex<")
                    || line.contains("Mutex::new")
                    || line.contains("RwLock<")
                    || line.contains("RwLock::new"))
                && !line.contains("OrderedMutex")
            {
                push(
                    "R2",
                    "bare Mutex/RwLock in pfs — use atomio_check::OrderedMutex so the lock-order graph sees it"
                        .into(),
                );
            }
            if line.contains("Ordering::Relaxed") {
                push(
                    "R3",
                    "Ordering::Relaxed outside the allowlist — justify in lintcheck.allow or strengthen"
                        .into(),
                );
            }
        }

        // Brace tracking (after the checks: the opening line itself is
        // part of the test region only if the attr preceded it).
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_test_attr {
                        if test_region_depth.is_none() {
                            test_region_depth = Some(depth);
                        }
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region_depth == Some(depth) {
                        test_region_depth = None;
                    }
                }
                _ => {}
            }
        }
        // An attribute followed by a braceless item (e.g. `#[cfg(test)]
        // use ...;`) drops the pending flag at the semicolon.
        if pending_test_attr && line.trim_end().ends_with(';') {
            pending_test_attr = false;
        }
    }
    diags
}

/// Collect the `.rs` files R1–R3 apply to: `crates/*/src` and `src/`,
/// skipping `shims/`, `target/`, and `tests/` trees.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            roots.push(c.path().join("src"));
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full lint over a repo checkout. Reads `lintcheck.allow` at
/// the root if present.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintDiag>> {
    let allow = match std::fs::read_to_string(root.join("lintcheck.allow")) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };
    let mut diags = Vec::new();
    for file in workspace_sources(root)? {
        let text = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&rel, &text, &allow));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_flags_unwrap_in_fault_module() {
        let diags = lint_source("crates/pfs/src/journal.rs", "fn f() { x.unwrap(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R1");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn r1_ignores_other_modules_and_comments() {
        assert!(lint_source("crates/trace/src/tracer.rs", "x.unwrap();\n", &[]).is_empty());
        assert!(lint_source(
            "crates/pfs/src/journal.rs",
            "// x.unwrap()\n/* x.expect(\"\") */\nlet s = \".unwrap()\";\n",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { x.unwrap(); }
}
fn h() { y.unwrap(); }
";
        let diags = lint_source("crates/pfs/src/journal.rs", src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn r2_flags_bare_mutex_but_not_ordered_or_guard() {
        let diags = lint_source(
            "crates/pfs/src/lock.rs",
            "state: Mutex<State>,\nstate: OrderedMutex<State>,\nfn f(g: &mut MutexGuard<'_, T>) {}\n",
            &[],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "R2");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn r3_flags_relaxed_everywhere_unless_allowed() {
        let allow =
            parse_allowlist("# comment\ncrates/trace/src/histogram.rs :: Ordering::Relaxed\n");
        assert!(lint_source(
            "crates/trace/src/histogram.rs",
            "c.fetch_add(1, Ordering::Relaxed);\n",
            &allow,
        )
        .is_empty());
        assert_eq!(
            lint_source(
                "crates/trace/src/tracer.rs",
                "f.load(Ordering::Relaxed);\n",
                &allow,
            )
            .len(),
            1
        );
    }
}
