//! The repo lint pass, token-level since PR 10.
//!
//! * **R1 — no `unwrap()`/`expect()` in fault-reachable modules.** The
//!   fault injector can surface `FsError` on any server round-trip, so
//!   code in the fault/journal/coherence/file/server/cache/storage layer
//!   must propagate errors through the `try_`/`FsError` plumbing, not
//!   panic.
//! * **R2 — no bare `Mutex`/`RwLock` in `crates/pfs`.** All pfs locking
//!   goes through `atomio_check::OrderedMutex` so the runtime lock-order
//!   graph sees every acquisition (the documented cache → coverage order,
//!   the managers' state-mutex discipline).
//! * **R3 — no `Ordering::Relaxed` outside the allowlist.** A relaxed
//!   cross-thread flag is how the PR 5 coherence bug family starts; every
//!   surviving use must be justified in `lintcheck.allow`.
//!
//! R1–R3 run over [`crate::lexer`] token streams, so string literals
//! (raw, byte, any `#` depth), nested block comments, and doc comments
//! can never false-positive, and `#[cfg(test)]` regions are excluded on
//! the token level. The original line [`Stripper`] survives, fixed, as
//! the reference the lexer is cross-checked against on a corpus of
//! tricky snippets.
//!
//! [`check_workspace`] is the full gate: R1–R3 here, R4–R6 from
//! [`crate::lockgraph`], plus **stale-allowlist detection** — every
//! `lintcheck.allow` entry must suppress at least one diagnostic, so
//! dead suppressions rot loudly.
//!
//! Allowlist format (`lintcheck.allow` at the repo root): one
//! `path-suffix :: substring` per line; a diagnostic is suppressed if
//! its path ends with the suffix and its source line contains the
//! substring.

use crate::lexer::TokKind;
use crate::lockgraph::{self, StaticAnalysis};
use crate::scopes;
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub source: String,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path,
            self.line,
            self.rule,
            self.message,
            self.source.trim()
        )
    }
}

/// One `path-suffix :: substring` allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub path_suffix: String,
    pub needle: String,
    /// 1-based line in `lintcheck.allow` (0 for entries built in code).
    pub line: usize,
}

pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|(line, l)| {
            let (p, n) = l.split_once("::")?;
            Some(AllowEntry {
                path_suffix: p.trim().to_string(),
                needle: n.trim().to_string(),
                line,
            })
        })
        .collect()
}

/// Index of the first allowlist entry matching this diagnostic site.
fn allow_match(allow: &[AllowEntry], path: &str, source: &str) -> Option<usize> {
    allow
        .iter()
        .position(|e| path.ends_with(&e.path_suffix) && source.contains(&e.needle))
}

/// Modules where a panic is a correctness bug: everything the fault
/// injector or crash/replay path can reach.
const FAULT_REACHABLE: &[&str] = &[
    "crates/pfs/src/fault.rs",
    "crates/pfs/src/journal.rs",
    "crates/pfs/src/coherence.rs",
    "crates/pfs/src/file.rs",
    "crates/pfs/src/server.rs",
    "crates/pfs/src/cache.rs",
    "crates/pfs/src/storage.rs",
];

fn is_fault_reachable(path: &str) -> bool {
    FAULT_REACHABLE.iter().any(|m| path.ends_with(m))
}

fn is_pfs_src(path: &str) -> bool {
    path.contains("crates/pfs/src/")
}

/// Strip comments and string literals from one line, tracking multi-line
/// state. This is the legacy line-based reference implementation; the
/// live rules run on [`crate::lexer`], and a corpus test keeps the two
/// in agreement. Handles nested `/* /* */ */` block comments (depth
/// counted, not a boolean) and raw strings `r#"…"#` at any `#` depth
/// (where backslashes do *not* escape), including multi-line ones.
#[derive(Default)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct Stripper {
    /// Nesting depth of block comments (`/* /* */ */` needs two closes).
    block_depth: usize,
    /// Inside a multi-line plain string?
    in_str: bool,
    /// Inside a multi-line raw string, with this many closing `#`s.
    in_raw: Option<usize>,
}

impl Stripper {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn strip(&mut self, line: &str) -> String {
        let b = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            if self.block_depth > 0 {
                if b[i..].starts_with(b"*/") {
                    self.block_depth -= 1;
                    i += 2;
                } else if b[i..].starts_with(b"/*") {
                    self.block_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            if self.in_str {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        self.in_str = false;
                        i += 1;
                        out.push('"');
                        continue;
                    }
                    _ => i += 1,
                }
                out.push(' ');
                continue;
            }
            if let Some(hashes) = self.in_raw {
                if b[i] == b'"'
                    && b[i + 1..].len() >= hashes
                    && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
                {
                    self.in_raw = None;
                    i += 1 + hashes;
                    out.push('"');
                } else {
                    i += 1;
                    out.push(' ');
                }
                continue;
            }
            // Raw string openers: r", r#…#", br", cr#…
            if b[i] == b'r' || b[i] == b'b' || b[i] == b'c' {
                let mut j = i;
                if b[j] != b'r' {
                    j += 1;
                }
                if j < b.len() && b[j] == b'r' {
                    let mut k = j + 1;
                    let mut hashes = 0usize;
                    while k < b.len() && b[k] == b'#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'"' {
                        // Don't treat an identifier ending in r (e.g.
                        // `var"…`? not valid Rust) — a raw string opener
                        // can't follow an ident char.
                        let prev_ident =
                            i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                        if !prev_ident {
                            self.in_raw = Some(hashes);
                            i = k + 1;
                            out.push('"');
                            continue;
                        }
                    }
                }
            }
            match b[i] {
                b'/' if b[i..].starts_with(b"//") => break, // line comment
                b'/' if b[i..].starts_with(b"/*") => {
                    self.block_depth = 1;
                    i += 2;
                    out.push(' ');
                }
                b'"' => {
                    i += 1;
                    out.push('"');
                    self.in_str = true;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                self.in_str = false;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    if !self.in_str {
                        out.push('"');
                    }
                }
                b'\'' if i + 2 < b.len() && (b[i + 1] == b'\\' || b[i + 2] == b'\'') => {
                    // char literal ('x' or '\n'); lifetimes ('a) fall through
                    i += 1; // opening quote
                    while i < b.len() && b[i] != b'\'' {
                        i += if b[i] == b'\\' { 2 } else { 1 };
                    }
                    i += 1;
                    out.push(' ');
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }
}

/// Token-level R1–R3 over one file. Returns diagnostics *not* matched by
/// the allowlist; matched entries are flagged in `used`.
fn lint_tokens(path: &str, text: &str, allow: &[AllowEntry], used: &mut [bool]) -> Vec<LintDiag> {
    let model = scopes::analyze(text, &HashSet::new());
    let lines: Vec<&str> = text.lines().collect();
    let toks = &model.toks;
    let mut diags = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        let source = lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or_default()
            .to_string();
        match allow_match(allow, path, &source) {
            Some(idx) => {
                if let Some(u) = used.get_mut(idx) {
                    *u = true;
                }
            }
            None => diags.push(LintDiag {
                path: path.to_string(),
                line: line as usize,
                rule,
                message,
                source,
            }),
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if model.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next = toks.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect"
                if is_fault_reachable(path)
                    && prev_dot
                    && next.is_some_and(|n| n.is_punct("(")) =>
            {
                push(
                    t.line,
                    "R1",
                    "unwrap()/expect() in a fault-reachable module — use the try_/FsError plumbing"
                        .into(),
                );
            }
            "Mutex" | "RwLock"
                if is_pfs_src(path)
                    && next.is_some_and(|n| {
                        n.is_punct("<")
                            || (n.is_punct("::")
                                && toks.get(i + 2).is_some_and(|m| m.is_ident("new")))
                    }) =>
            {
                push(
                    t.line,
                    "R2",
                    "bare Mutex/RwLock in pfs — use atomio_check::OrderedMutex so the lock-order graph sees it"
                        .into(),
                );
            }
            "Ordering"
                if next.is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|m| m.is_ident("Relaxed")) =>
            {
                push(
                    t.line,
                    "R3",
                    "Ordering::Relaxed outside the allowlist — justify in lintcheck.allow or strengthen"
                        .into(),
                );
            }
            _ => {}
        }
    }
    diags
}

/// Lint one file's source text (R1–R3). `path` is the repo-relative path
/// used in diagnostics and rule scoping.
pub fn lint_source(path: &str, text: &str, allow: &[AllowEntry]) -> Vec<LintDiag> {
    let mut used = vec![false; allow.len()];
    lint_tokens(path, text, allow, &mut used)
}

/// Collect the `.rs` files the analyses apply to: `crates/*/src` and
/// `src/`, skipping `shims/`, `target/`, and `tests/` trees.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            roots.push(c.path().join("src"));
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `(repo-relative path, source text)` pairs, the unit the analyses eat.
type SourceFiles = Vec<(String, String)>;

fn read_workspace(root: &Path) -> std::io::Result<(Vec<AllowEntry>, SourceFiles)> {
    let allow = match std::fs::read_to_string(root.join("lintcheck.allow")) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };
    let mut files = Vec::new();
    for file in workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&file)?));
    }
    Ok((allow, files))
}

/// Run R1–R3 over a repo checkout (back-compat entry point; the full
/// gate is [`check_workspace`]). Reads `lintcheck.allow` at the root if
/// present.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<LintDiag>> {
    let (allow, files) = read_workspace(root)?;
    let mut used = vec![false; allow.len()];
    let mut diags = Vec::new();
    for (rel, text) in &files {
        diags.extend(lint_tokens(rel, text, &allow, &mut used));
    }
    Ok(diags)
}

/// The full workspace gate: R1–R3, the static concurrency analyses
/// R4–R6, and stale-allowlist detection.
pub struct WorkspaceReport {
    /// Unsuppressed diagnostics, R1–R6 plus `stale-allow`.
    pub diags: Vec<LintDiag>,
    /// Allowlist entries that suppressed nothing.
    pub unused_allow: Vec<AllowEntry>,
    /// The static analysis (lock classes, edge graph) for reporting.
    pub analysis: StaticAnalysis,
}

/// Run everything over a repo checkout.
pub fn check_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let (allow, files) = read_workspace(root)?;
    let mut used = vec![false; allow.len()];
    let mut diags = Vec::new();
    for (rel, text) in &files {
        diags.extend(lint_tokens(rel, text, &allow, &mut used));
    }
    let analysis = lockgraph::analyze_sources(&files);
    for d in &analysis.diags {
        match allow_match(&allow, &d.path, &d.source) {
            Some(idx) => {
                if let Some(u) = used.get_mut(idx) {
                    *u = true;
                }
            }
            None => diags.push(d.clone()),
        }
    }
    let unused_allow: Vec<AllowEntry> = allow
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    for e in &unused_allow {
        diags.push(LintDiag {
            path: "lintcheck.allow".to_string(),
            line: e.line,
            rule: "stale-allow",
            message: format!(
                "allowlist entry `{} :: {}` suppresses nothing — remove it",
                e.path_suffix, e.needle
            ),
            source: format!("{} :: {}", e.path_suffix, e.needle),
        });
    }
    Ok(WorkspaceReport {
        diags,
        unused_allow,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_flags_unwrap_in_fault_module() {
        let diags = lint_source("crates/pfs/src/journal.rs", "fn f() { x.unwrap(); }\n", &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R1");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn r1_ignores_other_modules_and_comments() {
        assert!(lint_source(
            "crates/trace/src/tracer.rs",
            "fn f() { x.unwrap(); }\n",
            &[]
        )
        .is_empty());
        assert!(lint_source(
            "crates/pfs/src/journal.rs",
            "// x.unwrap()\n/* x.expect(\"\") */\nconst S: &str = \".unwrap()\";\n",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn r1_ignores_raw_strings_and_nested_comments() {
        // The two false-positive classes the line Stripper used to have.
        assert!(lint_source(
            "crates/pfs/src/journal.rs",
            "const S: &str = r#\"x.unwrap() \" still a string .expect(\"#;\n/* outer /* inner */ x.unwrap() */\n",
            &[],
        )
        .is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn f() {}
#[cfg(test)]
mod tests {
    fn g() { x.unwrap(); }
}
fn h() { y.unwrap(); }
";
        let diags = lint_source("crates/pfs/src/journal.rs", src, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn r2_flags_bare_mutex_but_not_ordered_or_guard() {
        let diags = lint_source(
            "crates/pfs/src/lock.rs",
            "struct S { state: Mutex<State>, ordered: OrderedMutex<State> }\nfn f(g: &mut MutexGuard<'_, T>) {}\nfn mk() { let m = Mutex::new(0); }\n",
            &[],
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "R2"));
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn r3_flags_relaxed_everywhere_unless_allowed() {
        let allow =
            parse_allowlist("# comment\ncrates/trace/src/histogram.rs :: Ordering::Relaxed\n");
        assert!(lint_source(
            "crates/trace/src/histogram.rs",
            "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n",
            &allow,
        )
        .is_empty());
        assert_eq!(
            lint_source(
                "crates/trace/src/tracer.rs",
                "fn f() { f.load(Ordering::Relaxed); }\n",
                &allow,
            )
            .len(),
            1
        );
    }

    /// Corpus of tricky snippets: the fixed line [`Stripper`] and the
    /// token lexer must agree on which probe substrings survive
    /// comment/string removal.
    #[test]
    fn stripper_and_lexer_agree_on_corpus() {
        let corpus: &[&str] = &[
            "x.unwrap();",
            "// x.unwrap()",
            "/* x.unwrap() */",
            "/* outer /* inner */ x.unwrap() */ y",
            "/* outer /* inner */ still */ x.unwrap();",
            "let s = \"x.unwrap()\";",
            "let s = r\"x.unwrap()\";",
            "let s = r#\"quote \" x.unwrap()\"#;",
            "let s = r##\"deep \"# x.unwrap()\"##;",
            "let s = br#\"bytes x.unwrap()\"#;",
            "let s = r#\"multi\nline x.unwrap()\nstill\"#; y.unwrap();",
            "let s = \"multi \\\n line\"; x.unwrap();",
            "let c = '\"'; x.unwrap();",
            "let c = '\\''; x.unwrap();",
            "state: Mutex<State>,",
            "let s = \"Mutex<\";",
            "let s = r#\"Mutex< Ordering::Relaxed\"#;",
            "c.fetch_add(1, Ordering::Relaxed);",
            "/* Ordering::Relaxed */ let x = 1;",
        ];
        for snippet in corpus {
            // Stripper view: concatenated stripped lines.
            let mut st = Stripper::default();
            let stripped: String = snippet
                .lines()
                .map(|l| st.strip(l))
                .collect::<Vec<_>>()
                .join("\n");
            // Lexer view: does the token stream contain the pattern?
            let toks = crate::lexer::lex(snippet);
            let tok_has = |name: &str| toks.iter().any(|t| t.is_ident(name));
            assert_eq!(
                stripped.contains(".unwrap()"),
                tok_has("unwrap"),
                "unwrap disagreement on {snippet:?}: stripped={stripped:?}"
            );
            assert_eq!(
                stripped.contains("Mutex<"),
                toks.iter().enumerate().any(|(i, t)| {
                    t.is_ident("Mutex") && toks.get(i + 1).is_some_and(|n| n.is_punct("<"))
                }),
                "Mutex disagreement on {snippet:?}: stripped={stripped:?}"
            );
            assert_eq!(
                stripped.contains("Ordering::Relaxed"),
                tok_has("Relaxed"),
                "Relaxed disagreement on {snippet:?}: stripped={stripped:?}"
            );
        }
    }

    #[test]
    fn stripper_handles_multiline_raw_string() {
        let mut st = Stripper::default();
        let l1 = st.strip("let s = r#\"begin");
        let l2 = st.strip("x.unwrap() inside");
        let l3 = st.strip("end\"#; y.unwrap();");
        assert!(!l1.contains("unwrap"));
        assert!(!l2.contains("unwrap"), "{l2:?}");
        assert!(l3.contains("y.unwrap()"), "{l3:?}");
    }

    #[test]
    fn allowlist_lines_are_tracked() {
        let allow = parse_allowlist("# c\n\na.rs :: foo\nb.rs :: bar\n");
        assert_eq!(allow.len(), 2);
        assert_eq!(allow[0].line, 3);
        assert_eq!(allow[1].line, 4);
    }
}
