//! Happens-before atomicity/race detection over the `atomio-trace` event
//! stream.
//!
//! The checker replays a recorded run with one vector clock per rank
//! track and reports every pair of conflicting overlapping byte accesses
//! (two accesses from different ranks, at least one a write, sharing a
//! byte) that no synchronization edge orders — mechanically, the paper's
//! §2.1 torn-write hazard, and PR 5's visibility contract ("a locked read
//! observes every conflicting write released before its grant") as a
//! checkable rule.
//!
//! Synchronization edges, drawn from the events the instrumented
//! subsystems already emit:
//!
//! * **grant-release → acquire** — a `lock release` (or the implicit
//!   release a `revoke flush` performs on the holder's behalf) joins into
//!   every later `lock wait` grant whose byte footprint *conflicts* with
//!   it (overlap with at least one exclusive side). This is exactly the
//!   conflict-wait the lock managers implement.
//! * **revocation flush** — dispatched while a rival acquisition is being
//!   granted, so it orders the holder's buffered writes before the
//!   acquirer; the flush span carries the revoked ranges as its
//!   footprint. The joined clock is the holder's as of the flush, which
//!   slightly over-synchronizes accesses the holder raced *outside* the
//!   cache mutex — conservative in the masking direction, never a false
//!   positive.
//! * **collective edges** — every `Category::Comm` span is an all-to-all
//!   rendezvous: the k-th collective of each participating rank joins
//!   every participant's clock *at its own k-th entry* (ranks that raced
//!   ahead contribute their saved entry snapshot, not their current
//!   clock, so post-barrier work never leaks backwards). Spans carrying
//!   repeated `mem` args (sub-communicator collectives) form their own
//!   *group*, keyed by the member list: k-indices and joins are counted
//!   per group, so a node communicator's gathers, the leader
//!   communicator's exchanges, and the world communicator's barriers
//!   never pair up across groups — concurrent sub-communicators with
//!   different collective counts would otherwise misalign every later
//!   world collective.
//!
//! Two entry points: [`check_events`] consumes an in-memory
//! [`MemorySink`](atomio_trace::MemorySink) buffer **in arrival order**
//! (which, because every event is emitted after the operation it
//! records, is consistent with the run's real synchronization), and
//! [`check_chrome_json`] imports an exported Chrome-trace file, rebuilding
//! a causally consistent order from the virtual timestamps (release and
//! flush events sort before same-instant grants; accesses before
//! same-instant releases).

use std::collections::HashMap;

use atomio_trace::{Category, TraceEvent, Track};

use crate::jsonv;

/// Byte runs `(lo, len)`; event args encode them as repeated
/// `("lo", x), ("len", y)` pairs, or a single `("off", o)` next to the
/// conventional `("bytes", n)`.
type Footprint = Vec<(u64, u64)>;

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    Acquire {
        fp: Footprint,
        excl: bool,
    },
    Release {
        fp: Footprint,
        excl: bool,
    },
    RevokeFlush {
        fp: Footprint,
    },
    Collective {
        /// Sorted world ranks of the communicator, parsed from repeated
        /// `mem` args; `None` for member-less spans (the world
        /// communicator / legacy traces), which form one global group.
        members: Option<Vec<usize>>,
    },
    Access {
        fp: Footprint,
        write: bool,
    },
}

#[derive(Debug, Clone)]
struct HbEvent {
    rank: usize,
    ts: u64,
    name: String,
    kind: Kind,
}

/// One side of a reported conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSite {
    pub rank: usize,
    pub name: String,
    /// Event timestamp (virtual ns).
    pub ts: u64,
    /// Bounding box of the access footprint.
    pub lo: u64,
    pub hi: u64,
}

impl std::fmt::Display for AccessSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} {:?} @{}ns [{}..{})",
            self.rank, self.name, self.ts, self.lo, self.hi
        )
    }
}

/// A pair of conflicting overlapping accesses with no ordering edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The side processed first.
    pub a: AccessSite,
    pub b: AccessSite,
    /// First overlapping byte run `[lo, hi)`.
    pub overlap: (u64, u64),
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unordered conflict on bytes [{}..{}): {} vs {}",
            self.overlap.0, self.overlap.1, self.a, self.b
        )
    }
}

/// The checker's verdict over one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HbReport {
    /// Rank-track events consumed (after filtering to the vocabulary).
    pub events: usize,
    /// Byte accesses among them.
    pub accesses: usize,
    /// Release→acquire / flush / collective joins performed.
    pub sync_joins: usize,
    pub findings: Vec<Finding>,
}

impl HbReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for HbReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "no unordered conflicting accesses");
        }
        write!(
            f,
            "{} unordered conflicting access pair(s)",
            self.findings.len()
        )?;
        for x in &self.findings {
            write!(f, "\n{x}")?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------ vocabulary

/// Pull a byte footprint out of event args. Absent one, sync events fall
/// back to whole-file (conservative: extra edges only mask races), and
/// access events return `None` (unanalyzable, skipped).
fn args_footprint(args: &[(String, u64)]) -> Option<Footprint> {
    let mut runs = Vec::new();
    let mut lo = None;
    for (k, v) in args {
        match k.as_str() {
            "lo" => lo = Some(*v),
            "len" => {
                if let Some(l) = lo.take() {
                    if *v > 0 {
                        runs.push((l, *v));
                    }
                }
            }
            _ => {}
        }
    }
    if !runs.is_empty() {
        return Some(runs);
    }
    let off = args.iter().find(|(k, _)| k == "off").map(|(_, v)| *v)?;
    let len = args.iter().find(|(k, _)| k == "bytes").map(|(_, v)| *v)?;
    (len > 0).then(|| vec![(off, len)])
}

const WHOLE_FILE: &[(u64, u64)] = &[(0, u64::MAX)];

fn arg(args: &[(String, u64)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Map one (rank-track) trace event into the checker vocabulary.
fn classify(
    cat: &str,
    name: &str,
    rank: usize,
    ts: u64,
    is_span: bool,
    args: &[(String, u64)],
) -> Option<HbEvent> {
    let fp_or_whole = || args_footprint(args).unwrap_or_else(|| WHOLE_FILE.to_vec());
    let kind = match (cat, name) {
        ("lock", "lock wait") => Kind::Acquire {
            fp: fp_or_whole(),
            excl: arg(args, "excl") != Some(0),
        },
        ("lock", "lock release") => Kind::Release {
            fp: fp_or_whole(),
            excl: arg(args, "excl") != Some(0),
        },
        ("coherence", "revoke flush") => Kind::RevokeFlush { fp: fp_or_whole() },
        ("comm", _) if is_span => {
            let mut members: Vec<usize> = args
                .iter()
                .filter(|(k, _)| k == "mem")
                .map(|&(_, v)| v as usize)
                .collect();
            members.sort_unstable();
            members.dedup();
            Kind::Collective {
                members: (!members.is_empty()).then_some(members),
            }
        }
        ("io", "direct write") | ("io", "listio write") | ("io", "batch write") => Kind::Access {
            fp: args_footprint(args)?,
            write: true,
        },
        ("io", "direct read") => Kind::Access {
            fp: args_footprint(args)?,
            write: false,
        },
        ("cache", "cached write") => Kind::Access {
            fp: args_footprint(args)?,
            write: true,
        },
        ("cache", "cached read") => Kind::Access {
            fp: args_footprint(args)?,
            write: false,
        },
        _ => return None,
    };
    Some(HbEvent {
        rank,
        ts,
        name: name.to_string(),
        kind,
    })
}

fn overlap_run(a: &Footprint, b: &Footprint) -> Option<(u64, u64)> {
    let mut best: Option<(u64, u64)> = None;
    for &(alo, alen) in a {
        for &(blo, blen) in b {
            let lo = alo.max(blo);
            let hi = (alo.saturating_add(alen)).min(blo.saturating_add(blen));
            if lo < hi && best.is_none_or(|(l, _)| lo < l) {
                best = Some((lo, hi));
            }
        }
    }
    best
}

fn bbox(fp: &Footprint) -> (u64, u64) {
    let lo = fp.iter().map(|&(l, _)| l).min().unwrap_or(0);
    let hi = fp
        .iter()
        .map(|&(l, n)| l.saturating_add(n))
        .max()
        .unwrap_or(0);
    (lo, hi)
}

// --------------------------------------------------------------- engine

struct RelRec {
    vc: Vec<u64>,
    fp: Footprint,
    excl: bool,
}

struct AccRec {
    rank: usize,
    actor: usize,
    vc: Vec<u64>,
    fp: Footprint,
    write: bool,
    name: String,
    ts: u64,
}

fn run_checker(events: Vec<HbEvent>) -> HbReport {
    // Dense actor indices over the ranks that appear.
    let mut actor_of: HashMap<usize, usize> = HashMap::new();
    for e in &events {
        let next = actor_of.len();
        actor_of.entry(e.rank).or_insert(next);
    }
    let n = actor_of.len();
    let mut clocks = vec![vec![0u64; n]; n];
    // Collective groups, keyed by member list. Member-less spans (`None`)
    // form one global group whose participants are every actor that ever
    // emits such a span; `mem`-tagged spans scope their edges (and their
    // k-indices) to exactly the listed ranks.
    let mut group_of: HashMap<Option<Vec<usize>>, usize> = HashMap::new();
    let mut group_parts: Vec<Vec<usize>> = Vec::new();
    for e in &events {
        if let Kind::Collective { members } = &e.kind {
            let gi = *group_of.entry(members.clone()).or_insert_with(|| {
                group_parts.push(match members {
                    Some(ms) => ms.iter().filter_map(|r| actor_of.get(r).copied()).collect(),
                    None => Vec::new(),
                });
                group_parts.len() - 1
            });
            if members.is_none() {
                group_parts[gi].push(actor_of[&e.rank]);
            }
        }
    }
    for p in &mut group_parts {
        p.sort_unstable();
        p.dedup();
    }
    let ngroups = group_parts.len();
    let mut coll_count = vec![vec![0usize; n]; ngroups];
    // [group][actor][k] = entry clock
    let mut coll_entry: Vec<Vec<Vec<Vec<u64>>>> = vec![vec![Vec::new(); n]; ngroups];
    let mut releases: Vec<RelRec> = Vec::new();
    let mut accesses: Vec<AccRec> = Vec::new();
    let mut report = HbReport::default();

    for e in events {
        let a = actor_of[&e.rank];
        report.events += 1;
        clocks[a][a] += 1;
        match e.kind {
            Kind::Acquire { fp, excl } => {
                for r in &releases {
                    if (excl || r.excl) && overlap_run(&fp, &r.fp).is_some() {
                        join(&mut clocks[a], &r.vc);
                        report.sync_joins += 1;
                    }
                }
            }
            Kind::Release { fp, excl } => releases.push(RelRec {
                vc: clocks[a].clone(),
                fp,
                excl,
            }),
            Kind::RevokeFlush { fp } => releases.push(RelRec {
                vc: clocks[a].clone(),
                fp,
                excl: true,
            }),
            Kind::Collective { members } => {
                let gi = group_of[&members];
                let k = coll_count[gi][a];
                coll_count[gi][a] += 1;
                debug_assert_eq!(coll_entry[gi][a].len(), k);
                coll_entry[gi][a].push(clocks[a].clone());
                let mut joined = clocks[a].clone();
                for &p in &group_parts[gi] {
                    if p == a {
                        continue;
                    }
                    // An actor that raced past its own k-th collective
                    // (of this group) contributes the clock it *entered*
                    // with; one that has not reached it yet contributes
                    // everything it has done so far (all of which
                    // precedes its entry).
                    let other = coll_entry[gi][p].get(k).unwrap_or(&clocks[p]);
                    join(&mut joined, other);
                    report.sync_joins += 1;
                }
                clocks[a] = joined;
            }
            Kind::Access { fp, write } => {
                report.accesses += 1;
                for acc in &accesses {
                    if acc.actor == a || !(write || acc.write) {
                        continue;
                    }
                    let Some(run) = overlap_run(&fp, &acc.fp) else {
                        continue;
                    };
                    // `acc` was processed earlier, so the only possible
                    // edge is acc → this access.
                    if acc.vc[acc.actor] <= clocks[a][acc.actor] {
                        continue;
                    }
                    let (alo, ahi) = bbox(&acc.fp);
                    let (blo, bhi) = bbox(&fp);
                    report.findings.push(Finding {
                        a: AccessSite {
                            rank: acc.rank,
                            name: acc.name.clone(),
                            ts: acc.ts,
                            lo: alo,
                            hi: ahi,
                        },
                        b: AccessSite {
                            rank: e.rank,
                            name: e.name.clone(),
                            ts: e.ts,
                            lo: blo,
                            hi: bhi,
                        },
                        overlap: run,
                    });
                }
                accesses.push(AccRec {
                    rank: e.rank,
                    actor: a,
                    vc: clocks[a].clone(),
                    fp,
                    write,
                    name: e.name,
                    ts: e.ts,
                });
            }
        }
    }

    report.findings.sort_by(|x, y| {
        (
            x.a.ts, x.a.rank, x.b.ts, x.b.rank, x.overlap, &x.a.name, &x.b.name,
        )
            .cmp(&(
                y.a.ts, y.a.rank, y.b.ts, y.b.rank, y.overlap, &y.a.name, &y.b.name,
            ))
    });
    report.findings.dedup();
    report
}

fn join(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

// ---------------------------------------------------------- entry points

/// Check an in-memory event buffer **in arrival order** (a
/// [`MemorySink`](atomio_trace::MemorySink) snapshot — its mutex makes
/// arrival order consistent with the run's real cross-thread causality).
pub fn check_events(events: &[TraceEvent]) -> HbReport {
    let stream = events
        .iter()
        .filter_map(|e| {
            let Track::Rank(rank) = e.track else {
                return None;
            };
            let args: Vec<(String, u64)> =
                e.args.iter().map(|&(k, v)| (k.to_string(), v)).collect();
            classify(
                cat_label(e.cat),
                e.name,
                rank,
                e.start,
                e.dur.is_some(),
                &args,
            )
        })
        .collect();
    run_checker(stream)
}

fn cat_label(cat: Category) -> &'static str {
    cat.label()
}

/// Check an exported Chrome-trace JSON document. The exporter sorts
/// events per track, so arrival order is gone; a causally consistent
/// order is rebuilt from the virtual timestamps: each event sorts at the
/// instant it takes effect (accesses and grants when they complete,
/// releases and revocation flushes when they are issued), with
/// same-instant ties broken access → release → flush → grant →
/// collective. Stable sort keeps per-track program order.
pub fn check_chrome_json(text: &str) -> Result<HbReport, String> {
    let doc = jsonv::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("no traceEvents array")?;
    let mut stream: Vec<(u64, u8, HbEvent)> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph != "X" && ph != "i" {
            continue; // metadata etc.
        }
        if ev.get("pid").and_then(|v| v.as_u64()) != Some(1) {
            continue; // only rank tracks carry client accesses
        }
        let rank = ev
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or("event without tid")? as usize;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_ns())
            .ok_or("event without ts")?;
        let dur = ev.get("dur").and_then(|v| v.as_ns());
        let cat = ev.get("cat").and_then(|v| v.as_str()).unwrap_or("");
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let args: Vec<(String, u64)> = ev
            .get("args")
            .map(|a| {
                a.entries()
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default();
        let Some(hbe) = classify(cat, name, rank, ts, dur.is_some(), &args) else {
            continue;
        };
        let end = ts + dur.unwrap_or(0);
        let (eff, prio) = match hbe.kind {
            Kind::Access { .. } => (end, 0u8),
            Kind::Release { .. } => (ts, 1),
            Kind::RevokeFlush { .. } => (ts, 2),
            Kind::Acquire { .. } => (end, 3),
            Kind::Collective { .. } => (end, 4),
        };
        stream.push((eff, prio, hbe));
    }
    stream.sort_by_key(|&(eff, prio, _)| (eff, prio));
    Ok(run_checker(stream.into_iter().map(|(_, _, e)| e).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        rank: usize,
        cat: Category,
        name: &'static str,
        ts: u64,
        dur: Option<u64>,
        args: &[(&'static str, u64)],
    ) -> TraceEvent {
        TraceEvent {
            track: Track::Rank(rank),
            cat,
            name,
            start: ts,
            dur,
            args: args.to_vec(),
        }
    }

    fn w(rank: usize, ts: u64, off: u64, len: u64) -> TraceEvent {
        ev(
            rank,
            Category::Io,
            "direct write",
            ts,
            Some(10),
            &[("bytes", len), ("off", off)],
        )
    }

    fn r(rank: usize, ts: u64, off: u64, len: u64) -> TraceEvent {
        ev(
            rank,
            Category::Io,
            "direct read",
            ts,
            Some(10),
            &[("bytes", len), ("off", off)],
        )
    }

    #[test]
    fn unsynchronized_conflict_is_reported() {
        let report = check_events(&[w(0, 0, 0, 64), r(1, 5, 32, 64)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].overlap, (32, 64));
    }

    #[test]
    fn reads_never_conflict_with_reads() {
        let report = check_events(&[r(0, 0, 0, 64), r(1, 5, 0, 64)]);
        assert!(report.is_clean());
        assert_eq!(report.accesses, 2);
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let report = check_events(&[w(0, 0, 0, 64), w(1, 5, 64, 64)]);
        assert!(report.is_clean());
    }

    #[test]
    fn release_acquire_edge_orders_the_pair() {
        let lock_args: &[(&'static str, u64)] = &[("lo", 0), ("len", 128), ("excl", 1)];
        let report = check_events(&[
            ev(0, Category::Lock, "lock wait", 0, Some(1), lock_args),
            w(0, 1, 0, 64),
            ev(0, Category::Lock, "lock release", 11, None, lock_args),
            ev(1, Category::Lock, "lock wait", 11, Some(1), lock_args),
            r(1, 12, 0, 64),
            ev(1, Category::Lock, "lock release", 22, None, lock_args),
        ]);
        assert!(report.is_clean(), "{report}");
        assert!(report.sync_joins >= 1);
    }

    #[test]
    fn shared_shared_release_builds_no_edge_but_is_clean() {
        let shared: &[(&'static str, u64)] = &[("lo", 0), ("len", 64), ("excl", 0)];
        let report = check_events(&[
            ev(0, Category::Lock, "lock wait", 0, Some(1), shared),
            r(0, 1, 0, 64),
            ev(0, Category::Lock, "lock release", 2, None, shared),
            ev(1, Category::Lock, "lock wait", 2, Some(1), shared),
            r(1, 3, 0, 64),
        ]);
        assert!(report.is_clean());
        assert_eq!(report.sync_joins, 0, "shared/shared must not synchronize");
    }

    #[test]
    fn revoke_flush_orders_buffered_write_before_rival_read() {
        let report = check_events(&[
            ev(
                0,
                Category::Cache,
                "cached write",
                0,
                None,
                &[("bytes", 64), ("off", 0)],
            ),
            // Rival's acquisition revokes rank 0's token, flushing bytes 0..64.
            ev(
                0,
                Category::Coherence,
                "revoke flush",
                10,
                Some(5),
                &[("lo", 0), ("len", 64)],
            ),
            ev(
                1,
                Category::Lock,
                "lock wait",
                10,
                Some(5),
                &[("lo", 0), ("len", 64), ("excl", 0)],
            ),
            r(1, 15, 0, 64),
        ]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn collective_barrier_orders_all_participants() {
        let report = check_events(&[
            w(0, 0, 0, 64),
            ev(0, Category::Comm, "barrier", 10, Some(5), &[]),
            ev(1, Category::Comm, "barrier", 12, Some(3), &[]),
            r(1, 15, 0, 64),
        ]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn barrier_racer_ahead_does_not_leak_post_barrier_work_backwards() {
        // Rank 0 passes the barrier and writes; rank 1's barrier event
        // arrives later (real-thread scheduling), then rank 1 reads the
        // same bytes without further synchronization: racy.
        let report = check_events(&[
            ev(0, Category::Comm, "barrier", 10, Some(5), &[]),
            w(0, 15, 0, 64),
            ev(1, Category::Comm, "barrier", 12, Some(3), &[]),
            r(1, 16, 0, 64),
        ]);
        assert_eq!(report.findings.len(), 1, "{report}");
    }

    #[test]
    fn sub_communicator_collectives_pair_by_group_not_globally() {
        // Node {0,1} runs TWO sub-communicator collectives while node
        // {2,3} runs ONE, then everybody joins a world barrier. With a
        // single global k-index the barrier would be rank 0's 3rd
        // collective but rank 3's 2nd and the join would misalign,
        // reporting a phantom race; grouped by member list it is the 0th
        // world collective for everyone.
        let node01: &[(&'static str, u64)] = &[("bytes", 64), ("mem", 0), ("mem", 1)];
        let node23: &[(&'static str, u64)] = &[("bytes", 64), ("mem", 2), ("mem", 3)];
        let report = check_events(&[
            ev(0, Category::Comm, "gatherv", 0, Some(2), node01),
            ev(1, Category::Comm, "gatherv", 0, Some(2), node01),
            ev(0, Category::Comm, "gatherv", 5, Some(2), node01),
            ev(1, Category::Comm, "gatherv", 5, Some(2), node01),
            w(0, 8, 0, 64),
            ev(2, Category::Comm, "gatherv", 0, Some(2), node23),
            ev(3, Category::Comm, "gatherv", 0, Some(2), node23),
            ev(0, Category::Comm, "barrier", 20, Some(5), &[]),
            ev(1, Category::Comm, "barrier", 20, Some(5), &[]),
            ev(2, Category::Comm, "barrier", 20, Some(5), &[]),
            ev(3, Category::Comm, "barrier", 20, Some(5), &[]),
            r(3, 26, 0, 64),
        ]);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn sub_communicator_edges_do_not_cover_outside_ranks() {
        // A {0,1} collective orders nothing about rank 2: its write and
        // rank 0's later read stay an unordered conflict.
        let node01: &[(&'static str, u64)] = &[("bytes", 8), ("mem", 0), ("mem", 1)];
        let report = check_events(&[
            w(2, 0, 0, 64),
            ev(0, Category::Comm, "gatherv", 5, Some(2), node01),
            ev(1, Category::Comm, "gatherv", 5, Some(2), node01),
            r(0, 10, 0, 64),
        ]);
        assert_eq!(report.findings.len(), 1, "{report}");
    }

    #[test]
    fn chrome_roundtrip_detects_and_clears() {
        let racy = atomio_trace::export_chrome(&[w(0, 0, 0, 64), r(1, 5, 32, 64)]);
        let report = check_chrome_json(&racy).unwrap();
        assert_eq!(report.findings.len(), 1);

        let lock_args: &[(&'static str, u64)] = &[("lo", 0), ("len", 128), ("excl", 1)];
        let clean = atomio_trace::export_chrome(&[
            ev(0, Category::Lock, "lock wait", 0, Some(1), lock_args),
            w(0, 1, 0, 64),
            ev(0, Category::Lock, "lock release", 11, None, lock_args),
            ev(1, Category::Lock, "lock wait", 11, Some(1), lock_args),
            r(1, 12, 0, 64),
        ]);
        let report = check_chrome_json(&clean).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn finding_display_is_stable() {
        let report = check_events(&[w(0, 100, 0, 64), r(1, 205, 32, 64)]);
        assert_eq!(
            report.to_string(),
            "1 unordered conflicting access pair(s)\n\
             unordered conflict on bytes [32..64): \
             rank 0 \"direct write\" @100ns [0..64) vs rank 1 \"direct read\" @205ns [32..96)"
        );
    }
}
