//! Aggregator selection and file-domain partitioning.

use atomio_interval::ByteRange;

/// One aggregator's slice of the aggregate file extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileDomain {
    /// Communicator rank of the owning aggregator.
    pub rank: usize,
    /// Contiguous file bytes this aggregator writes. Domains are disjoint
    /// and, except possibly at the extent's edges, stripe-aligned.
    pub range: ByteRange,
}

/// Pick `want` aggregator ranks out of `p`, node-aware.
///
/// `ranks_per_node` models how the job was launched (threads-as-ranks here,
/// but the placement logic is the real one): with `want < p` the aggregators
/// are spread one-per-node round-robin before a second rank of any node is
/// used, following Kang et al.'s observation that aggregator NICs, not
/// cores, are the bottleneck resource. `want` is clamped to `[1, p]`;
/// the result is sorted and duplicate-free.
pub fn choose_aggregators(p: usize, want: usize, ranks_per_node: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one rank");
    let want = want.clamp(1, p);
    let rpn = ranks_per_node.max(1);
    let nodes = p.div_ceil(rpn);
    let mut picked = Vec::with_capacity(want);
    // slot-major: slot 0 of every node first, then slot 1, ...
    'outer: for slot in 0..rpn {
        for node in 0..nodes {
            let rank = node * rpn + slot;
            if rank < p {
                picked.push(rank);
                if picked.len() == want {
                    break 'outer;
                }
            }
        }
    }
    picked.sort_unstable();
    picked
}

/// Partition `extent` into one contiguous domain per aggregator by
/// splitting the **absolute stripe-unit grid**, not raw bytes: stripe unit
/// `u` covers file bytes `[u*stripe, (u+1)*stripe)`, the extent spans some
/// `U` whole-or-partial units, and aggregator `i` owns units
/// `[⌈U·i/A⌉, ⌈U·(i+1)/A⌉)` clipped to the extent. Every interior boundary
/// is therefore a stripe multiple in absolute offsets — no stripe unit, and
/// hence no I/O server request, is ever shared by two aggregators — and the
/// byte imbalance is bounded by one stripe unit plus the edge partials,
/// however the extent is aligned.
///
/// (The previous byte-space split rounded `extent.start + share·(i+1)` up
/// to the next stripe multiple, which with a stripe-unaligned
/// `extent.start` silently inflated the first domain by up to a full
/// stripe and starved the last — splitting the unit *grid* keeps the
/// shares even relative to the stripe units that actually exist.)
///
/// Aggregators whose share rounds away (tiny extents, many aggregators)
/// simply get no domain; the returned list contains only non-empty domains,
/// in ascending file order.
pub fn partition_domains(extent: ByteRange, aggregators: &[usize], stripe: u64) -> Vec<FileDomain> {
    assert!(!aggregators.is_empty(), "need at least one aggregator");
    assert!(stripe > 0, "stripe unit must be positive");
    if extent.is_empty() {
        return Vec::new();
    }
    let a = aggregators.len() as u64;
    let unit_lo = extent.start / stripe;
    let units = extent.end.div_ceil(stripe) - unit_lo;
    let mut out = Vec::with_capacity(aggregators.len());
    let mut start = extent.start;
    for (i, &rank) in aggregators.iter().enumerate() {
        if start >= extent.end {
            break;
        }
        let end = if i + 1 == aggregators.len() {
            extent.end
        } else {
            // Cumulative unit share of aggregators 0..=i, remainder units
            // biased to the front so tiny extents land on aggregator 0.
            let cum = (units * (i as u64 + 1)).div_ceil(a);
            (unit_lo + cum).saturating_mul(stripe).min(extent.end)
        };
        if end > start {
            out.push(FileDomain {
                rank,
                range: ByteRange::new(start, end),
            });
            start = end;
        }
    }
    out
}

/// Locate the domain containing file offset `off`, if any. `domains` must
/// be ascending (as produced by [`partition_domains`]).
pub(crate) fn domain_of(domains: &[FileDomain], off: u64) -> Option<usize> {
    let idx = domains.partition_point(|d| d.range.end <= off);
    (idx < domains.len() && domains[idx].range.contains(off)).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregators_default_prefix_when_one_rank_per_node() {
        assert_eq!(choose_aggregators(8, 3, 1), vec![0, 1, 2]);
        assert_eq!(choose_aggregators(4, 4, 1), vec![0, 1, 2, 3]);
        assert_eq!(choose_aggregators(4, 99, 1), vec![0, 1, 2, 3]);
        assert_eq!(choose_aggregators(4, 0, 1), vec![0]);
    }

    #[test]
    fn aggregators_spread_across_nodes_first() {
        // 8 ranks, 4 per node -> nodes {0..3}, {4..7}. Two aggregators must
        // land on different nodes, not both on node 0.
        assert_eq!(choose_aggregators(8, 2, 4), vec![0, 4]);
        // Four aggregators: two per node, slot-major.
        assert_eq!(choose_aggregators(8, 4, 4), vec![0, 1, 4, 5]);
        // More aggregators than nodes*1: wraps to second slot.
        assert_eq!(choose_aggregators(6, 3, 2), vec![0, 2, 4]);
    }

    #[test]
    fn domains_cover_extent_disjoint_and_aligned() {
        let extent = ByteRange::new(100, 100_000);
        let aggs = [0usize, 2, 5, 7];
        let stripe = 4096;
        let domains = partition_domains(extent, &aggs, stripe);
        assert_eq!(domains.len(), 4);
        // Coverage: first starts at extent start, last ends at extent end,
        // consecutive domains touch.
        assert_eq!(domains[0].range.start, 100);
        assert_eq!(domains.last().unwrap().range.end, 100_000);
        for w in domains.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
            // Interior boundaries stripe-aligned.
            assert_eq!(w[0].range.end % stripe, 0);
        }
        // Owners in order.
        let owners: Vec<usize> = domains.iter().map(|d| d.rank).collect();
        assert_eq!(owners, vec![0, 2, 5, 7]);
    }

    #[test]
    fn tiny_extent_collapses_to_fewer_domains() {
        // One stripe of data, four aggregators: only the first gets work.
        let domains = partition_domains(ByteRange::new(0, 1000), &[0, 1, 2, 3], 4096);
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].rank, 0);
        assert_eq!(domains[0].range, ByteRange::new(0, 1000));
    }

    #[test]
    fn empty_extent_yields_no_domains() {
        assert!(partition_domains(ByteRange::new(5, 5), &[0, 1], 64).is_empty());
    }

    #[test]
    fn domain_lookup() {
        let domains = partition_domains(ByteRange::new(0, 10_000), &[0, 1], 1024);
        assert_eq!(domain_of(&domains, 0), Some(0));
        assert_eq!(domain_of(&domains, 9_999), Some(1));
        assert_eq!(domain_of(&domains, 10_000), None);
        let boundary = domains[0].range.end;
        assert_eq!(domain_of(&domains, boundary - 1), Some(0));
        assert_eq!(domain_of(&domains, boundary), Some(1));
    }

    /// The stripe-ownership and coverage invariants every partition must
    /// satisfy, whatever the extent alignment.
    fn assert_domain_invariants(extent: ByteRange, domains: &[FileDomain], stripe: u64) {
        assert_eq!(domains.first().unwrap().range.start, extent.start);
        assert_eq!(domains.last().unwrap().range.end, extent.end);
        for w in domains.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start, "gap between domains");
            assert_eq!(
                w[0].range.end % stripe,
                0,
                "interior boundary {} not stripe-aligned",
                w[0].range.end
            );
        }
        // No stripe unit owned by two aggregators.
        for w in domains.windows(2) {
            assert_ne!(
                (w[0].range.end - 1) / stripe,
                w[1].range.start / stripe,
                "stripe unit split between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn unaligned_extent_start_keeps_domains_balanced() {
        // Regression: the old byte-space round-up inflated the first domain
        // by up to a full stripe when `extent.start` was unaligned (e.g.
        // start=100, stripe=64, 64 aggregators gave domains of 220 vs 52
        // bytes). Unit-grid splitting bounds the imbalance by ~2 stripes.
        let stripe = 64u64;
        let extent = ByteRange::new(100, 100 + 10_000);
        let aggs: Vec<usize> = (0..64).collect();
        let domains = partition_domains(extent, &aggs, stripe);
        assert_domain_invariants(extent, &domains, stripe);
        let max = domains.iter().map(|d| d.range.len()).max().unwrap();
        let min = domains.iter().map(|d| d.range.len()).min().unwrap();
        assert!(
            max - min <= 2 * stripe,
            "imbalance {max} vs {min} with unaligned start"
        );
        // Same at a realistic stripe with a mid-stripe start.
        let stripe = 65_536u64;
        let extent = ByteRange::new(12_345, 12_345 + (64 << 20));
        let domains = partition_domains(extent, &[0, 1, 2, 3], stripe);
        assert_domain_invariants(extent, &domains, stripe);
        let max = domains.iter().map(|d| d.range.len()).max().unwrap();
        let min = domains.iter().map(|d| d.range.len()).min().unwrap();
        assert!(max - min <= 2 * stripe, "imbalance {max} vs {min}");
    }

    #[test]
    fn extent_smaller_than_one_stripe_goes_to_first_aggregator() {
        for start in [0u64, 17, 4000] {
            let extent = ByteRange::new(start, start + 90);
            let domains = partition_domains(extent, &[3, 5, 8], 4096);
            assert_eq!(domains.len(), 1, "start {start}");
            assert_eq!(domains[0].rank, 3);
            assert_eq!(domains[0].range, extent);
        }
        // An unaligned sub-stripe extent *crossing* a unit boundary may use
        // two aggregators, but never split a unit.
        let extent = ByteRange::new(4000, 4300);
        let domains = partition_domains(extent, &[0, 1], 4096);
        assert_domain_invariants(extent, &domains, 4096);
    }

    #[test]
    fn more_aggregators_than_stripe_units() {
        // want > extent/stripe: exactly one domain per stripe unit, each a
        // whole unit (clipped at the extent edges), later aggregators idle.
        let stripe = 4096u64;
        let extent = ByteRange::new(100, 3 * stripe + 50);
        let aggs: Vec<usize> = (0..8).collect();
        let domains = partition_domains(extent, &aggs, stripe);
        assert_domain_invariants(extent, &domains, stripe);
        assert_eq!(domains.len(), 4, "one domain per touched stripe unit");
        for d in &domains {
            assert!(d.range.len() <= stripe);
            // Each domain covers exactly one stripe unit's worth of extent.
            assert_eq!(d.range.start / stripe, (d.range.end - 1) / stripe);
        }
    }

    #[test]
    fn domains_balance_large_extents() {
        let stripe = 64 * 1024;
        let total = 256 * 1024 * 1024u64;
        let domains = partition_domains(ByteRange::new(0, total), &[0, 1, 2, 3], stripe);
        assert_eq!(domains.len(), 4);
        let max = domains.iter().map(|d| d.range.len()).max().unwrap();
        let min = domains.iter().map(|d| d.range.len()).min().unwrap();
        assert!(max - min <= stripe, "imbalance {max} vs {min}");
    }
}
