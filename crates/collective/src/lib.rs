//! Two-phase collective I/O with aggregator file domains.
//!
//! The paper's three strategies (file locking, graph coloring, process-rank
//! ordering) all leave every rank writing its own non-contiguous view; they
//! differ only in how the overlaps are serialized. Two-phase collective I/O
//! (Thakur, Gropp & Lusk, "Optimizing Noncontiguous Accesses in MPI-IO";
//! del Rosario, Bordawekar & Choudhary's original two-phase scheme) removes
//! the overlap *by construction* instead:
//!
//! 1. **View exchange** — ranks allgather their flattened file-view
//!    footprints, so everyone agrees on the aggregate file extent;
//! 2. **File domains** — the extent is partitioned into A ≤ P contiguous,
//!    stripe-aligned *file domains*, each owned by one aggregator rank.
//!    Aggregator placement is node-aware (Kang et al., "Improving MPI
//!    Collective I/O Performance With Intra-node Request Aggregation"):
//!    aggregators spread across nodes before doubling up within one;
//! 3. **Redistribution** — an `alltoallv` moves every rank's data pieces to
//!    the aggregators owning them. Conflicts (bytes contributed by several
//!    ranks) are resolved *inside the aggregator's buffer* by applying
//!    contributions in ascending sender rank, so the highest rank wins —
//!    the same serialization process-rank ordering produces, which is what
//!    the `atomio-core::verify` checker accepts;
//! 4. **I/O** — each aggregator issues a few large contiguous writes for
//!    its domain. Domains are disjoint, so the writes need **no locks, no
//!    ordering phases and no barriers beyond the settle handshake**:
//!    MPI atomicity comes free.
//!
//! The cost is one extra pass of the data over the network (charged through
//! the `alltoallv` virtual-time model) against far fewer, far larger server
//! requests — the classic collective-buffering trade.
//!
//! The redistribution itself comes in two schedules
//! ([`ExchangeSchedule`]): the classic **flat** single-tier `alltoallv`,
//! and a **pipelined multi-tier** schedule (the `staged` module) where
//! each node's ranks first coalesce their pieces at a node leader over the
//! cheap intra-node link — dropping intra-node overlap before it ever
//! costs network bandwidth — only leaders run the inter-node exchange, and
//! the whole redistribution proceeds in stripe-aligned rounds whose writes
//! are retired `depth` rounds behind, overlapping communication with file
//! I/O. Both schedules produce byte-identical files.

mod domain;
mod exchange;
mod staged;
mod two_phase;

pub use domain::{choose_aggregators, partition_domains, FileDomain};
pub use exchange::route_segments;
pub use two_phase::{
    two_phase_read, two_phase_write, ExchangeSchedule, TwoPhaseConfig, TwoPhaseReadReport,
    TwoPhaseReport,
};
