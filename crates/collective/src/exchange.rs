//! Routing of a rank's view segments to the owning aggregators.

use atomio_dtype::ViewSegment;

use crate::domain::{domain_of, FileDomain};

/// One redistributed piece: `(absolute file offset, bytes)`. The tuple form
/// is what travels through `Comm::alltoallv`.
pub type Piece = (u64, Vec<u8>);

/// Split this rank's `segments` (with their data from `buf`, whose first
/// byte is logical offset `base`) along the domain boundaries and bucket
/// the pieces by destination rank.
///
/// Returns one bucket per communicator rank (`nprocs` total); buckets of
/// non-aggregator ranks stay empty. Pieces are emitted in ascending file
/// order, so each aggregator receives each source's contribution sorted.
pub fn route_segments(
    nprocs: usize,
    segments: &[ViewSegment],
    buf: &[u8],
    base: u64,
    domains: &[FileDomain],
) -> Vec<Vec<Piece>> {
    let mut out: Vec<Vec<Piece>> = vec![Vec::new(); nprocs];
    for seg in segments {
        let mut off = seg.file_off;
        let end = seg.file_end();
        while off < end {
            let Some(di) = domain_of(domains, off) else {
                // Outside every domain — cannot happen when domains cover
                // the allgathered extent, but stay robust for arbitrary
                // caller-supplied domains: hop straight to the next domain
                // boundary instead of scanning byte-by-byte.
                let idx = domains.partition_point(|d| d.range.start <= off);
                match domains.get(idx) {
                    Some(d) if d.range.start < end => {
                        off = d.range.start;
                        continue;
                    }
                    _ => break,
                }
            };
            let dom = &domains[di];
            let take = end.min(dom.range.end) - off;
            let logical = (seg.logical_off + (off - seg.file_off) - base) as usize;
            out[dom.rank].push((off, buf[logical..logical + take as usize].to_vec()));
            off += take;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_interval::ByteRange;

    fn seg(file_off: u64, logical_off: u64, len: u64) -> ViewSegment {
        ViewSegment {
            file_off,
            logical_off,
            len,
        }
    }

    fn dom(rank: usize, start: u64, end: u64) -> FileDomain {
        FileDomain {
            rank,
            range: ByteRange::new(start, end),
        }
    }

    #[test]
    fn segments_split_at_domain_boundaries() {
        let domains = [dom(0, 0, 100), dom(3, 100, 200)];
        let buf: Vec<u8> = (0..40u8).collect();
        // One segment straddling the boundary: file [80, 120), logical 0..40.
        let out = route_segments(4, &[seg(80, 0, 40)], &buf, 0, &domains);
        assert_eq!(out[0], vec![(80u64, (0..20u8).collect::<Vec<_>>())]);
        assert_eq!(out[3], vec![(100u64, (20..40u8).collect::<Vec<_>>())]);
        assert!(out[1].is_empty() && out[2].is_empty());
    }

    #[test]
    fn base_offset_shifts_buffer_indexing() {
        let domains = [dom(1, 0, 1000)];
        let buf = vec![9u8; 10];
        // Logical stream offset 50 maps to buf[0] when base = 50.
        let out = route_segments(2, &[seg(500, 50, 10)], &buf, 50, &domains);
        assert_eq!(out[1], vec![(500u64, vec![9u8; 10])]);
    }

    #[test]
    fn multiple_segments_stay_sorted_per_destination() {
        let domains = [dom(0, 0, 1000)];
        let buf: Vec<u8> = (0..30u8).collect();
        let segs = [seg(10, 0, 10), seg(200, 10, 10), seg(900, 20, 10)];
        let out = route_segments(1, &segs, &buf, 0, &domains);
        let offs: Vec<u64> = out[0].iter().map(|p| p.0).collect();
        assert_eq!(offs, vec![10, 200, 900]);
        let total: usize = out[0].iter().map(|p| p.1.len()).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn uncovered_gaps_are_hopped_not_scanned() {
        // Domains cover only [0, 100); the segment extends a gigabyte past
        // them. The uncovered tail must be dropped by hopping domain
        // boundaries, not by a per-byte scan.
        let domains = [dom(0, 0, 100)];
        let buf = [1u8; 64];
        let out = route_segments(1, &[seg(50, 0, 1 << 30)], &buf[..], 0, &domains);
        assert_eq!(out[0], vec![(50u64, vec![1u8; 50])]);

        // Segment starting before the first domain hops forward into it.
        let domains = [dom(0, 1000, 1100)];
        let big = vec![2u8; 1064];
        let out = route_segments(1, &[seg(0, 0, 1064)], &big, 0, &domains);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0].0, 1000);
        assert_eq!(out[0][0].1.len(), 64);
    }

    #[test]
    fn empty_segments_produce_empty_buckets() {
        let domains = [dom(0, 0, 100)];
        let out = route_segments(3, &[], &[], 0, &domains);
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(out.len(), 3);
    }
}
