//! The two-phase collective write/read drivers.

use atomio_dtype::ViewSegment;
use atomio_interval::{ByteRange, IntervalSet, StridedSet};
use atomio_msg::Comm;
use atomio_pfs::PosixFile;
use atomio_trace::Category;
use atomio_vtime::NodeTopology;

use crate::choose_aggregators;
use crate::domain::{domain_of, partition_domains, FileDomain};
use crate::exchange::{route_segments, Piece};

/// How the redistribution phase is scheduled across the node topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeSchedule {
    /// Classic single-tier two-phase: one flat `alltoallv` over all P
    /// ranks, then one monolithic write phase. The reference schedule the
    /// pipelined variants must match byte for byte.
    Flat,
    /// Multi-tier: each node's ranks first funnel their pieces to the node
    /// leader over the cheap intra-node link (dropping intra-node overlap
    /// on the way), only the leaders run the inter-node exchange, and the
    /// whole redistribution is cut into stripe-aligned *rounds* so round
    /// `k`'s exchange overlaps round `k-1`'s aggregator write.
    Pipelined {
        /// Stripe units per round (`0` means the default of 4). Smaller
        /// rounds pipeline more finely but pay more per-round collectives.
        round_stripes: u32,
        /// Write-behind depth: how many rounds of server writes may be in
        /// flight before the leaders stop and retire the oldest. `1`
        /// serializes write-behind (strict tiering, no overlap), `2`
        /// double-buffers, `0` means unbounded (retire everything at the
        /// end).
        depth: u32,
    },
}

/// Tuning knobs of the two-phase subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPhaseConfig {
    /// Number of aggregator ranks, clamped to `[1, P]`. `None` uses one
    /// aggregator per simulated I/O server (capped at P) — enough to keep
    /// every server streaming without over-subscribing them.
    ///
    /// The pipelined schedule additionally clamps to the node count, so
    /// every aggregator is a node leader.
    pub aggregators: Option<usize>,
    /// Ranks per node, for node-aware aggregator placement (Kang et al.).
    /// With the threads-as-ranks runtime this is a modeling input; 1 means
    /// every rank is its own node and aggregators are simply ranks `0..A`.
    pub ranks_per_node: usize,
    /// Redistribution schedule; see [`ExchangeSchedule`].
    pub schedule: ExchangeSchedule,
}

impl Default for TwoPhaseConfig {
    fn default() -> Self {
        TwoPhaseConfig {
            aggregators: None,
            ranks_per_node: 1,
            schedule: ExchangeSchedule::Flat,
        }
    }
}

/// Per-rank accounting of one two-phase collective write.
#[derive(Debug, Clone)]
pub struct TwoPhaseReport {
    /// Aggregators that received a (non-empty) file domain this round.
    pub aggregator_count: usize,
    /// This rank's file domain, when it served as an aggregator.
    pub domain: Option<ByteRange>,
    /// Bytes this rank contributed to redistribution (its whole request,
    /// including any part routed to itself).
    pub bytes_shipped: u64,
    /// Bytes this rank wrote to the servers as an aggregator (0 for pure
    /// compute ranks). Summed over ranks this equals the union coverage —
    /// each overlapped byte is written exactly once.
    pub bytes_written: u64,
    /// Contiguous write runs this rank issued (the "large writes").
    pub write_runs: usize,
    /// Bytes that arrived at this aggregator from more than one rank —
    /// the overlap volume resolved for free inside the exchange buffer.
    /// On the pipelined schedule a leader's node-tier dedup drops count
    /// here too, so the sum over ranks still equals the total overlap.
    pub conflict_bytes: u64,
    /// Redistribution payload bytes this rank put on *intra-node* links
    /// (sender and receiver share a node; self-destined bytes count
    /// nowhere). Zero on the flat schedule with 1 rank per node.
    pub wire_intra_bytes: u64,
    /// Redistribution payload bytes this rank put on *inter-node* links —
    /// the traffic the multi-tier schedule exists to shrink.
    pub wire_inter_bytes: u64,
    /// Exchange rounds executed (1 on the flat schedule).
    pub rounds: usize,
    /// Server-write errors this rank absorbed under fault injection (the
    /// fault-aware slow path reports rather than panics; 0 when healthy).
    pub write_errors: usize,
}

/// Per-rank accounting of one two-phase collective read.
#[derive(Debug, Clone)]
pub struct TwoPhaseReadReport {
    pub aggregator_count: usize,
    /// Bytes this rank read from the servers as an aggregator.
    pub bytes_read_from_servers: u64,
    /// Contiguous read runs this rank issued.
    pub read_runs: usize,
}

fn plan_domains(
    comm: &Comm,
    file: &PosixFile,
    segments: &[ViewSegment],
    cfg: &TwoPhaseConfig,
) -> Vec<FileDomain> {
    // Phase 0: exchange flattened views, run-length-compressed. The
    // allgather's wire charge is the *compressed* encoding — O(trains) per
    // rank, not O(rows) — so the modeled §3.4 negotiation overhead scales
    // with the access description, exactly like the handshaking strategies.
    let footprint = StridedSet::from_sorted_extents(segments.iter().map(|s| (s.file_off, s.len)));
    let all = comm.allgather(footprint);

    let lo = all.iter().filter_map(|s| s.span()).map(|r| r.start).min();
    let hi = all.iter().filter_map(|s| s.span()).map(|r| r.end).max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Vec::new(); // nobody has data this round
    };

    let want = cfg
        .aggregators
        .unwrap_or_else(|| file.server_count().max(1));
    let aggregators = choose_aggregators(comm.size(), want, cfg.ranks_per_node);
    partition_domains(ByteRange::new(lo, hi), &aggregators, file.stripe_unit())
}

/// One collective, MPI-atomic write through two-phase redistribution.
///
/// All ranks of `comm` must call this together (it is built from
/// collectives and barriers). `segments` is this rank's request mapped
/// through its file view; `buf` holds the data, whose first byte is logical
/// stream offset `base`.
///
/// Issues **zero lock requests**: domains are disjoint by construction, so
/// the aggregators' writes cannot conflict, and overlapped user data was
/// already reduced (highest rank wins) during the exchange phase.
pub fn two_phase_write(
    comm: &Comm,
    file: &PosixFile,
    segments: &[ViewSegment],
    buf: &[u8],
    base: u64,
    cfg: &TwoPhaseConfig,
) -> TwoPhaseReport {
    assert!(
        segments
            .windows(2)
            .all(|w| w[0].file_end() <= w[1].file_off),
        "two_phase_write needs ascending, non-overlapping segments (as FileView::segments yields)"
    );
    if let ExchangeSchedule::Pipelined {
        round_stripes,
        depth,
    } = cfg.schedule
    {
        return crate::staged::staged_write(
            comm,
            file,
            segments,
            buf,
            base,
            cfg,
            round_stripes,
            depth,
        );
    }
    let t0 = comm.clock().now();
    let domains = plan_domains(comm, file, segments, cfg);
    comm.tracer().span(
        Category::Exchange,
        "negotiate domains",
        t0,
        comm.clock().now(),
        &[("aggregators", domains.len() as u64)],
    );

    // Phase 1: redistribution. Every piece of every rank's request travels
    // to the aggregator owning its file domain; the alltoallv charges
    // virtual time for the full shipped volume.
    let t1 = comm.clock().now();
    let outgoing = route_segments(comm.size(), segments, buf, base, &domains);
    let bytes_shipped: u64 = outgoing.iter().flatten().map(|(_, d)| d.len() as u64).sum();
    // Classify the shipped volume by link class (self-destined bytes never
    // touch a wire) so flat and pipelined runs compare on the same meter.
    let topo = NodeTopology::new(comm.size(), cfg.ranks_per_node.max(1));
    let (mut wire_intra, mut wire_inter) = (0u64, 0u64);
    for (dst, bucket) in outgoing.iter().enumerate() {
        if dst == comm.rank() {
            continue;
        }
        let n: u64 = bucket.iter().map(|(_, d)| d.len() as u64).sum();
        if topo.same_node(comm.rank(), dst) {
            wire_intra += n;
        } else {
            wire_inter += n;
        }
    }
    let stats = file.stats();
    stats.add(&stats.wire_intra_bytes, wire_intra);
    stats.add(&stats.wire_inter_bytes, wire_inter);
    let incoming = comm.alltoallv(outgoing);

    // Phase 2: aggregation. Contributions are applied in ascending sender
    // rank, so wherever two ranks overlapped, the higher rank's bytes
    // survive — the rank-ordering serialization, computed as a side effect
    // of exchange-buffer assembly instead of by view subtraction.
    //
    // Staging is one buffer per covered *run*, never the domain extent: a
    // sparse request over a huge file must not allocate the whole domain.
    let mine: Option<&FileDomain> = domains.iter().find(|d| d.rank == comm.rank());
    let mut report = TwoPhaseReport {
        aggregator_count: domains.len(),
        domain: mine.map(|d| d.range),
        bytes_shipped,
        bytes_written: 0,
        write_runs: 0,
        conflict_bytes: 0,
        wire_intra_bytes: wire_intra,
        wire_inter_bytes: wire_inter,
        rounds: 1,
        write_errors: 0,
    };

    let mut staged: Vec<(ByteRange, Vec<u8>)> = Vec::new();
    if mine.is_some() {
        let coverage =
            IntervalSet::from_extents(incoming.iter().flatten().map(|(o, d)| (*o, d.len() as u64)));
        staged = coverage
            .iter()
            .map(|r| (*r, vec![0u8; r.len() as usize]))
            .collect();
        let mut received = 0u64;
        for bucket in &incoming {
            // `incoming` is indexed by source rank in ascending order. Each
            // piece is contiguous, so it lies inside exactly one coverage run.
            for (off, data) in bucket {
                let ri = coverage.runs().partition_point(|r| r.end <= *off);
                let (run, dst) = &mut staged[ri];
                let rel = (*off - run.start) as usize;
                dst[rel..rel + data.len()].copy_from_slice(data);
                received += data.len() as u64;
            }
        }
        // Every byte received beyond the union arrived from more than one
        // rank: the overlap volume resolved inside the exchange buffer.
        report.conflict_bytes = received - coverage.total_len();
        // Assembling the exchange buffers is local memory traffic.
        comm.compute(file.profile().cache.mem.copy_ns(received));
    }
    comm.tracer().span(
        Category::Exchange,
        "exchange",
        t1,
        comm.clock().now(),
        &[("bytes", bytes_shipped)],
    );

    // Phase 3: large contiguous writes, one per covered run. Every rank —
    // aggregator or not — walks the same submit/settle handshake so the
    // deferred server timing stays deterministic.
    let writes: Vec<(u64, &[u8])> = staged
        .iter()
        .map(|(run, data)| (run.start, data.as_slice()))
        .collect();
    report.bytes_written = writes.iter().map(|(_, d)| d.len() as u64).sum();
    report.write_runs = writes.len();
    let t2 = comm.clock().now();
    let ticket = file.pwrite_batch(&writes);
    comm.barrier();
    file.complete_writes(ticket);
    comm.barrier();
    comm.tracer().span(
        Category::Exchange,
        "write phase",
        t2,
        comm.clock().now(),
        &[("bytes", report.bytes_written)],
    );
    report
}

/// One collective read through the aggregators: each aggregator fetches its
/// domain's requested coverage with large contiguous reads, then scatters
/// the pieces back to the requesting ranks.
///
/// `segments` must be ascending and non-overlapping in file offset — the
/// form [`FileView::segments`](atomio_dtype::FileView::segments) produces —
/// so that each returned piece maps back to exactly one segment.
pub fn two_phase_read(
    comm: &Comm,
    file: &PosixFile,
    segments: &[ViewSegment],
    buf: &mut [u8],
    base: u64,
    cfg: &TwoPhaseConfig,
) -> TwoPhaseReadReport {
    assert!(
        segments
            .windows(2)
            .all(|w| w[0].file_end() <= w[1].file_off),
        "two_phase_read needs ascending, non-overlapping segments (as FileView::segments yields)"
    );
    let t0 = comm.clock().now();
    let domains = plan_domains(comm, file, segments, cfg);
    comm.tracer().span(
        Category::Exchange,
        "negotiate domains",
        t0,
        comm.clock().now(),
        &[("aggregators", domains.len() as u64)],
    );
    let t1 = comm.clock().now();

    // Phase 1: ship (offset, len) requests to the owning aggregators.
    let mut requests: Vec<Vec<(u64, u64)>> = vec![Vec::new(); comm.size()];
    for seg in segments {
        let mut off = seg.file_off;
        let end = seg.file_end();
        while off < end {
            let Some(di) = domain_of(&domains, off) else {
                // Outside every domain: hop to the next domain boundary.
                match next_domain_start(&domains, off) {
                    Some(start) if start < end => {
                        off = start;
                        continue;
                    }
                    _ => break,
                }
            };
            let dom = &domains[di];
            let take = end.min(dom.range.end) - off;
            requests[dom.rank].push((off, take));
            off += take;
        }
    }
    let incoming_requests = comm.alltoallv(requests);

    // Phase 2: aggregators read the union of requested ranges in few large
    // accesses, then answer each request from the staged buffer.
    let mine = domains.iter().find(|d| d.rank == comm.rank());
    let mut report = TwoPhaseReadReport {
        aggregator_count: domains.len(),
        bytes_read_from_servers: 0,
        read_runs: 0,
    };
    let mut replies: Vec<Vec<Piece>> = vec![Vec::new(); comm.size()];
    if mine.is_some() {
        // Stage per covered run (not per domain extent — see the write path).
        let coverage =
            IntervalSet::from_extents(incoming_requests.iter().flatten().map(|&(o, l)| (o, l)));
        let mut staged: Vec<(ByteRange, Vec<u8>)> = coverage
            .iter()
            .map(|r| (*r, vec![0u8; r.len() as usize]))
            .collect();
        for (run, data) in staged.iter_mut() {
            file.pread_direct(run.start, data);
            report.bytes_read_from_servers += run.len();
            report.read_runs += 1;
        }
        for (src, reqs) in incoming_requests.iter().enumerate() {
            for &(off, len) in reqs {
                // A request is contiguous and part of the union, so it lies
                // inside exactly one coverage run.
                let ri = coverage.runs().partition_point(|r| r.end <= off);
                let (run, data) = &staged[ri];
                let rel = (off - run.start) as usize;
                replies[src].push((off, data[rel..rel + len as usize].to_vec()));
            }
        }
        comm.compute(
            file.profile()
                .cache
                .mem
                .copy_ns(report.bytes_read_from_servers),
        );
    }
    let incoming_data = comm.alltoallv(replies);
    comm.tracer().span(
        Category::Exchange,
        "read exchange",
        t1,
        comm.clock().now(),
        &[("bytes", report.bytes_read_from_servers)],
    );
    let t2 = comm.clock().now();

    // Phase 3: place received pieces into the user buffer via the segment
    // map (segments are ascending in file offset, pieces were split per
    // segment, so each piece lies inside exactly one segment).
    for bucket in &incoming_data {
        for (off, data) in bucket {
            let idx = segments.partition_point(|s| s.file_end() <= *off);
            let seg = segments
                .get(idx)
                .filter(|s| s.file_off <= *off && *off + data.len() as u64 <= s.file_end())
                .expect("returned piece must lie inside one requested segment");
            let rel = (seg.logical_off + (off - seg.file_off) - base) as usize;
            buf[rel..rel + data.len()].copy_from_slice(data);
        }
    }
    comm.barrier();
    comm.tracer()
        .span(Category::Exchange, "scatter", t2, comm.clock().now(), &[]);
    report
}

/// Start offset of the first domain beginning strictly after `off`, if any.
fn next_domain_start(domains: &[FileDomain], off: u64) -> Option<u64> {
    let idx = domains.partition_point(|d| d.range.start <= off);
    domains.get(idx).map(|d| d.range.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_msg::run;
    use atomio_pfs::{FileSystem, PlatformProfile};

    /// Two ranks, overlapping contiguous views: [0, 150) and [100, 250).
    fn overlap_segments(rank: usize) -> Vec<ViewSegment> {
        match rank {
            0 => vec![ViewSegment {
                file_off: 0,
                logical_off: 0,
                len: 150,
            }],
            _ => vec![ViewSegment {
                file_off: 100,
                logical_off: 0,
                len: 150,
            }],
        }
    }

    #[test]
    fn overlap_resolves_to_highest_rank() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let reports = run(2, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "tp");
            let segs = overlap_segments(comm.rank());
            let buf = vec![(comm.rank() + 1) as u8; 150];
            two_phase_write(&comm, &file, &segs, &buf, 0, &TwoPhaseConfig::default())
        });
        let snap = fs.snapshot("tp").unwrap();
        assert_eq!(snap.len(), 250);
        assert!(snap[..100].iter().all(|&b| b == 1), "rank 0 exclusive");
        assert!(
            snap[100..150].iter().all(|&b| b == 2),
            "overlap: rank 1 wins"
        );
        assert!(snap[150..].iter().all(|&b| b == 2), "rank 1 exclusive");
        // Each byte written once.
        let written: u64 = reports.iter().map(|r| r.bytes_written).sum();
        assert_eq!(written, 250);
        // Overlap detected at some aggregator.
        let conflicts: u64 = reports.iter().map(|r| r.conflict_bytes).sum();
        assert_eq!(conflicts, 50);
        // Both ranks shipped their full request.
        assert!(reports.iter().all(|r| r.bytes_shipped == 150));
    }

    #[test]
    fn zero_lock_requests() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let stats = run(2, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "locks");
            let segs = overlap_segments(comm.rank());
            let buf = vec![7u8; 150];
            two_phase_write(&comm, &file, &segs, &buf, 0, &TwoPhaseConfig::default());
            file.stats().snapshot()
        });
        assert!(stats.iter().all(|s| s.lock_acquires == 0));
    }

    #[test]
    fn works_on_lockless_platform() {
        // The whole point: Cplant/ENFS has no locks, two-phase needs none.
        let fs = FileSystem::new(PlatformProfile::cplant());
        run(2, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "enfs");
            let segs = overlap_segments(comm.rank());
            let buf = vec![(comm.rank() + 1) as u8; 150];
            two_phase_write(&comm, &file, &segs, &buf, 0, &TwoPhaseConfig::default());
        });
        let snap = fs.snapshot("enfs").unwrap();
        assert!(snap[100..150].iter().all(|&b| b == 2));
    }

    #[test]
    fn aggregator_count_respects_config() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        for want in [1usize, 2, 4] {
            let name = format!("agg{want}");
            let cfg = TwoPhaseConfig {
                aggregators: Some(want),
                ..TwoPhaseConfig::default()
            };
            let reports = run(4, fs.profile().net.clone(), |comm| {
                let file = fs.open(comm.rank(), comm.clock().clone(), &name);
                // Disjoint 64 KiB block per rank: extent 256 KiB, enough
                // stripes for every aggregator to get a domain.
                let segs = vec![ViewSegment {
                    file_off: comm.rank() as u64 * 65_536,
                    logical_off: 0,
                    len: 65_536,
                }];
                let buf = vec![1u8; 65_536];
                two_phase_write(&comm, &file, &segs, &buf, 0, &cfg)
            });
            assert!(
                reports.iter().all(|r| r.aggregator_count == want),
                "want {want}"
            );
            let writers = reports.iter().filter(|r| r.bytes_written > 0).count();
            assert_eq!(writers, want);
        }
    }

    #[test]
    fn sparse_view_over_huge_extent_stages_only_covered_bytes() {
        // Two 1-byte writes a terabyte apart: the aggregate extent is ~1 TiB
        // but staging is per covered run, so this must complete instantly
        // without attempting domain-sized allocations.
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let reports = run(2, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "sparse");
            let segs = vec![ViewSegment {
                file_off: comm.rank() as u64 * (1u64 << 40),
                logical_off: 0,
                len: 1,
            }];
            let buf = vec![(comm.rank() + 1) as u8; 1];
            two_phase_write(&comm, &file, &segs, &buf, 0, &TwoPhaseConfig::default())
        });
        let written: u64 = reports.iter().map(|r| r.bytes_written).sum();
        assert_eq!(written, 2);
        assert!(reports.iter().all(|r| r.conflict_bytes == 0));
    }

    #[test]
    fn empty_request_everywhere_is_a_clean_noop() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let reports = run(3, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "empty");
            two_phase_write(&comm, &file, &[], &[], 0, &TwoPhaseConfig::default())
        });
        assert!(reports
            .iter()
            .all(|r| r.aggregator_count == 0 && r.bytes_written == 0));
    }

    #[test]
    fn single_rank_roundtrip_write_then_read() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let out = run(1, fs.profile().net.clone(), |comm| {
            let file = fs.open(0, comm.clock().clone(), "rt");
            let segs = vec![
                ViewSegment {
                    file_off: 10,
                    logical_off: 0,
                    len: 20,
                },
                ViewSegment {
                    file_off: 50,
                    logical_off: 20,
                    len: 20,
                },
            ];
            let data: Vec<u8> = (0..40).collect();
            two_phase_write(&comm, &file, &segs, &data, 0, &TwoPhaseConfig::default());
            let mut back = vec![0u8; 40];
            two_phase_read(
                &comm,
                &file,
                &segs,
                &mut back,
                0,
                &TwoPhaseConfig::default(),
            );
            (data, back)
        });
        let (data, back) = &out[0];
        assert_eq!(data, back);
    }

    #[test]
    fn collective_read_scatters_to_all_ranks() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        // Seed the file: byte at offset o is o % 251.
        {
            let f = fs.open(0, atomio_vtime::Clock::new(), "scatter");
            let data: Vec<u8> = (0..300u64).map(|o| (o % 251) as u8).collect();
            f.pwrite_direct(0, &data);
        }
        let out = run(2, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "scatter");
            let segs = overlap_segments(comm.rank());
            let mut buf = vec![0u8; 150];
            let rep = two_phase_read(&comm, &file, &segs, &mut buf, 0, &TwoPhaseConfig::default());
            (buf, rep)
        });
        for (rank, (buf, _)) in out.iter().enumerate() {
            let start = if rank == 0 { 0u64 } else { 100 };
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((start + i as u64) % 251) as u8, "rank {rank} byte {i}");
            }
        }
        // Reads were aggregated: each aggregator read contiguous runs.
        let total_runs: usize = out.iter().map(|(_, r)| r.read_runs).sum();
        assert!(total_runs <= fs.profile().sim_servers.max(2));
    }

    #[test]
    fn virtual_time_advances_with_shipped_volume() {
        // Doubling the data volume must cost more virtual time.
        let time_for = |n: u64| {
            let fs = FileSystem::new(PlatformProfile::ibm_sp());
            let out = run(2, fs.profile().net.clone(), move |comm| {
                let file = fs.open(comm.rank(), comm.clock().clone(), "t");
                let segs = vec![ViewSegment {
                    file_off: comm.rank() as u64 * n,
                    logical_off: 0,
                    len: n,
                }];
                let buf = vec![1u8; n as usize];
                two_phase_write(&comm, &file, &segs, &buf, 0, &TwoPhaseConfig::default());
                comm.clock().now()
            });
            out.into_iter().max().unwrap()
        };
        assert!(time_for(1 << 22) > time_for(1 << 16));
    }
}
