//! The multi-tier, pipelined redistribution schedule
//! ([`ExchangeSchedule::Pipelined`](crate::ExchangeSchedule)).
//!
//! Three ideas compose here, each one paper-faithful on its own:
//!
//! 1. **Intra-node aggregation.** Ranks sharing a node funnel their pieces
//!    to the node leader over the intra-node link class (shared memory /
//!    NUMA fabric), which is orders of magnitude cheaper than the
//!    inter-node network. The leader drops intra-node overlap on the way
//!    through (keeping the highest-ranked copy of every byte), so
//!    duplicate bytes never reach a wire that costs anything.
//! 2. **Leaders-only exchange.** Only the node leaders join the inter-node
//!    `alltoallv`, so its latency tree is `log₂(nodes)` rather than
//!    `log₂(P)` and every payload byte on the expensive link is unique.
//! 3. **Round pipelining.** The redistribution is cut into stripe-aligned
//!    rounds; aggregators submit each round's writes to the deferred
//!    server pipe and only *retire* them `depth` rounds later, so round
//!    `k`'s exchange runs while round `k-depth`'s file writes are still in
//!    flight.
//!
//! Conflict resolution is still highest-rank-wins per byte: node-tier
//! dedup keeps the node's highest-ranked copy, pieces carry their original
//! source rank across the leader exchange, and aggregators apply in
//! ascending `(source rank, offset)` order — byte-identical to the flat
//! schedule on any overlapping footprint.

use atomio_dtype::ViewSegment;
use atomio_interval::{ByteRange, IntervalSet, StridedSet};
use atomio_msg::Comm;
use atomio_pfs::PosixFile;
use atomio_trace::Category;
use atomio_vtime::NodeTopology;

use crate::choose_aggregators;
use crate::domain::{partition_domains, FileDomain};
use crate::exchange::route_segments;
use crate::two_phase::{TwoPhaseConfig, TwoPhaseReport};

/// A piece in flight between tiers. Node tier: `(destination leader index,
/// file offset, bytes)`. Leader tier: `(source comm rank, file offset,
/// bytes)` — the source rank is what keeps conflict resolution global.
type TaggedPiece = (u64, u64, Vec<u8>);

/// Default round size when `round_stripes` is 0.
const DEFAULT_ROUND_STRIPES: u64 = 4;

fn span_min_max(spans: impl IntoIterator<Item = Option<(u64, u64)>>) -> Option<(u64, u64)> {
    spans
        .into_iter()
        .flatten()
        .reduce(|(lo, hi), (s, e)| (lo.min(s), hi.max(e)))
}

#[allow(clippy::too_many_arguments)] // mirrors two_phase_write plus the schedule knobs
pub(crate) fn staged_write(
    comm: &Comm,
    file: &PosixFile,
    segments: &[ViewSegment],
    buf: &[u8],
    base: u64,
    cfg: &TwoPhaseConfig,
    round_stripes: u32,
    depth: u32,
) -> TwoPhaseReport {
    let rpn = cfg.ranks_per_node.max(1);
    let topo = NodeTopology::new(comm.size(), rpn);
    let node = comm.split_node(&topo);
    let leaders = comm.split_leaders(&topo);

    // Phase 0: hierarchical span negotiation. Footprint spans travel
    // leader-ward over the cheap links; only the leaders allgather across
    // the network. Every rank then derives the same domains from the same
    // global span — no per-rank footprint ever crosses a node boundary.
    let t0 = comm.clock().now();
    let footprint = StridedSet::from_sorted_extents(segments.iter().map(|s| (s.file_off, s.len)));
    let my_span = footprint.span().map(|r| (r.start, r.end));
    let gathered_spans = node.gather(0, my_span);
    let node_span = gathered_spans.and_then(span_min_max);
    let global_span = match &leaders {
        Some(l) => {
            let all = l.allgather(node_span);
            node.bcast(0, Some(span_min_max(all)))
        }
        None => node.bcast(0, None),
    };

    let mut report = TwoPhaseReport {
        aggregator_count: 0,
        domain: None,
        bytes_shipped: 0,
        bytes_written: 0,
        write_runs: 0,
        conflict_bytes: 0,
        wire_intra_bytes: 0,
        wire_inter_bytes: 0,
        rounds: 0,
        write_errors: 0,
    };
    let Some((lo, hi)) = global_span else {
        comm.barrier(); // nobody has data this round; leave clocks aligned
        return report;
    };

    // Aggregators are clamped to the node count so every aggregator is a
    // node leader and the write phase never re-crosses the network.
    let want = cfg
        .aggregators
        .unwrap_or_else(|| file.server_count().max(1))
        .clamp(1, topo.nodes());
    let agg_ranks = choose_aggregators(comm.size(), want, rpn);
    let domains = partition_domains(ByteRange::new(lo, hi), &agg_ranks, file.stripe_unit());
    comm.tracer().span(
        Category::Exchange,
        "negotiate domains",
        t0,
        comm.clock().now(),
        &[("aggregators", domains.len() as u64)],
    );

    report.aggregator_count = domains.len();
    report.domain = domains
        .iter()
        .find(|d| d.rank == comm.rank())
        .map(|d| d.range);

    let round_bytes = match round_stripes {
        0 => DEFAULT_ROUND_STRIPES,
        n => n as u64,
    } * file.stripe_unit();
    let max_len = domains.iter().map(|d| d.range.len()).max().unwrap_or(0);
    let rounds = max_len.div_ceil(round_bytes).max(1) as usize;
    report.rounds = rounds;

    // Fault injection forces the synchronous, recovery-capable write path:
    // no tickets may be left in flight across a crash/replay cycle, and
    // write failures must surface as report entries, never panics.
    let fault_mode = file.faults_active();
    let mut tickets: Vec<Option<u64>> = vec![None; rounds];
    let mem = &file.profile().cache.mem;

    for k in 0..rounds {
        // Retire the round that fell out of the write-behind window before
        // admitting new work. The barrier pair keeps the deferred servers
        // deterministic: every leader's earlier submissions are in before
        // the first settle, and nobody submits again until all have
        // settled.
        if !fault_mode && depth > 0 && k >= depth as usize {
            if let Some(l) = &leaders {
                l.barrier();
                if let Some(t) = tickets[k - depth as usize].take() {
                    file.complete_writes(t);
                }
                l.barrier();
            }
        }

        let round_domains: Vec<FileDomain> = domains
            .iter()
            .filter_map(|d| {
                let start = d.range.start + k as u64 * round_bytes;
                (start < d.range.end).then(|| FileDomain {
                    rank: d.rank,
                    range: ByteRange::new(start, (start + round_bytes).min(d.range.end)),
                })
            })
            .collect();

        // Tier 1: route this round's pieces and funnel them to the node
        // leader. The destination tag is the *leader-communicator* index of
        // the owning aggregator (aggregators are leaders by construction).
        let t_agg = comm.clock().now();
        let outgoing = route_segments(comm.size(), segments, buf, base, &round_domains);
        let mut tagged: Vec<TaggedPiece> = Vec::new();
        for (dst, pieces) in outgoing.into_iter().enumerate() {
            let li = (dst / rpn) as u64;
            for (off, data) in pieces {
                report.bytes_shipped += data.len() as u64;
                tagged.push((li, off, data));
            }
        }
        let payload: u64 = tagged.iter().map(|p| p.2.len() as u64).sum();
        let gathered = node.gatherv(0, tagged);
        if node.rank() != 0 {
            // Non-leaders paid the intra-node link; the leader's own pieces
            // never left its memory.
            report.wire_intra_bytes += payload;
        }
        comm.tracer().span(
            Category::Exchange,
            "aggregate",
            t_agg,
            comm.clock().now(),
            &[("round", k as u64), ("bytes", payload)],
        );

        let Some(l) = &leaders else { continue };
        let by_src = gathered.unwrap_or_default();

        // Node-tier dedup, walking local sources highest rank first: the
        // first copy of a byte to claim coverage wins, so what survives is
        // exactly the node's highest-ranked contribution. Round domains are
        // disjoint across aggregators, so one coverage set serves all
        // destinations.
        let mut out_buckets: Vec<Vec<TaggedPiece>> = vec![Vec::new(); l.size()];
        let mut coverage = IntervalSet::new();
        let mut gathered_bytes = 0u64;
        for (i, pieces) in by_src.iter().enumerate().rev() {
            let src = (comm.rank() + i) as u64; // leader's comm rank == node base
            for (dest, off, data) in pieces {
                gathered_bytes += data.len() as u64;
                let piece = ByteRange::at(*off, data.len() as u64);
                let survive = IntervalSet::from_range(piece).subtract(&coverage);
                for r in survive.iter() {
                    let rel = (r.start - off) as usize;
                    out_buckets[*dest as usize].push((
                        src,
                        r.start,
                        data[rel..rel + r.len() as usize].to_vec(),
                    ));
                }
                report.conflict_bytes += data.len() as u64 - survive.total_len();
                coverage.insert(piece);
            }
        }
        comm.compute(mem.copy_ns(gathered_bytes));

        // Tier 2: leaders-only exchange. Payload headed to another node is
        // the inter-node wire traffic this schedule is judged on.
        let t_ex = comm.clock().now();
        let inter: u64 = out_buckets
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != l.rank())
            .flat_map(|(_, b)| b.iter().map(|p| p.2.len() as u64))
            .sum();
        report.wire_inter_bytes += inter;
        let incoming = l.alltoallv(out_buckets);
        comm.tracer().span(
            Category::Exchange,
            "exchange round",
            t_ex,
            comm.clock().now(),
            &[("round", k as u64), ("bytes", inter)],
        );

        // Aggregation: apply in ascending (source rank, offset) so the
        // globally highest-ranked copy of every byte lands last — the same
        // rank-ordering serialization as the flat exchange buffer.
        let t_w = comm.clock().now();
        let mut pieces: Vec<TaggedPiece> = incoming.into_iter().flatten().collect();
        pieces.sort_by_key(|p| (p.0, p.1));
        let round_cover = IntervalSet::from_extents(pieces.iter().map(|p| (p.1, p.2.len() as u64)));
        let mut staged: Vec<(ByteRange, Vec<u8>)> = round_cover
            .iter()
            .map(|r| (*r, vec![0u8; r.len() as usize]))
            .collect();
        let mut received = 0u64;
        for (_, off, data) in &pieces {
            let ri = round_cover.runs().partition_point(|r| r.end <= *off);
            let (run, dst) = &mut staged[ri];
            let rel = (*off - run.start) as usize;
            dst[rel..rel + data.len()].copy_from_slice(data);
            received += data.len() as u64;
        }
        report.conflict_bytes += received - round_cover.total_len();
        comm.compute(mem.copy_ns(received));

        let writes: Vec<(u64, &[u8])> = staged
            .iter()
            .map(|(run, data)| (run.start, data.as_slice()))
            .collect();
        report.bytes_written += round_cover.total_len();
        report.write_runs += writes.len();
        if !writes.is_empty() {
            if fault_mode {
                for (off, data) in &writes {
                    if file.try_pwrite_direct(*off, data).is_err() {
                        report.write_errors += 1;
                        break;
                    }
                }
            } else {
                tickets[k] = Some(file.pwrite_batch(&writes));
            }
        }
        comm.tracer().span(
            Category::Exchange,
            "round write",
            t_w,
            comm.clock().now(),
            &[("round", k as u64), ("bytes", round_cover.total_len())],
        );
    }

    // Drain: retire every still-open ticket in submission order, then
    // realign the whole communicator.
    if let Some(l) = &leaders {
        let t_d = comm.clock().now();
        l.barrier();
        for t in tickets.iter_mut() {
            if let Some(t) = t.take() {
                file.complete_writes(t);
            }
        }
        comm.tracer()
            .span(Category::Exchange, "drain", t_d, comm.clock().now(), &[]);
    }
    comm.barrier();

    let stats = file.stats();
    stats.add(&stats.wire_intra_bytes, report.wire_intra_bytes);
    stats.add(&stats.wire_inter_bytes, report.wire_inter_bytes);
    report
}

#[cfg(test)]
mod tests {
    use atomio_pfs::{FileSystem, PlatformProfile};

    use super::*;
    use crate::two_phase::{two_phase_write, ExchangeSchedule};

    const P: usize = 8;
    const RPN: usize = 4;
    const BLOCK: u64 = 8 * 1024; // 2 fast_test stripes
    const HALO: u64 = 4 * 1024;

    /// Rank r writes [r·B − H, (r+1)·B + H) clipped to the file: every
    /// interior block boundary is overlapped by two ranks.
    fn halo_segments(rank: usize) -> Vec<ViewSegment> {
        let start = (rank as u64 * BLOCK).saturating_sub(HALO);
        let end = ((rank as u64 + 1) * BLOCK + HALO).min(P as u64 * BLOCK);
        vec![ViewSegment {
            file_off: start,
            logical_off: 0,
            len: end - start,
        }]
    }

    fn write_all(fs: &FileSystem, name: &str, schedule: ExchangeSchedule) -> Vec<TwoPhaseReport> {
        let name = name.to_string();
        atomio_msg::run(P, fs.profile().net.clone(), move |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), &name);
            let segs = halo_segments(comm.rank());
            let buf = vec![(comm.rank() + 1) as u8; segs[0].len as usize];
            let cfg = TwoPhaseConfig {
                aggregators: None,
                ranks_per_node: RPN,
                schedule,
            };
            two_phase_write(&comm, &file, &segs, &buf, 0, &cfg)
        })
    }

    #[test]
    fn pipelined_is_byte_identical_to_flat() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let flat = write_all(&fs, "flat", ExchangeSchedule::Flat);
        for (rs, depth) in [(1u32, 1u32), (1, 2), (2, 0), (0, 3)] {
            let name = format!("pipe_{rs}_{depth}");
            let pipe = write_all(
                &fs,
                &name,
                ExchangeSchedule::Pipelined {
                    round_stripes: rs,
                    depth,
                },
            );
            assert_eq!(
                fs.snapshot("flat").unwrap(),
                fs.snapshot(&name).unwrap(),
                "round_stripes={rs} depth={depth}"
            );
            // Every byte of the union written exactly once, whatever the
            // round decomposition.
            let written: u64 = pipe.iter().map(|r| r.bytes_written).sum();
            assert_eq!(written, P as u64 * BLOCK);
            // Total overlap volume is schedule-invariant, wherever the
            // duplicate copies were dropped.
            let flat_conflicts: u64 = flat.iter().map(|r| r.conflict_bytes).sum();
            let pipe_conflicts: u64 = pipe.iter().map(|r| r.conflict_bytes).sum();
            assert_eq!(flat_conflicts, pipe_conflicts);
            assert!(pipe.iter().all(|r| r.write_errors == 0));
        }
    }

    /// Every rank writes the whole extent (maximal overlap): the node tier
    /// collapses each node's eight copies to one before anything crosses
    /// the network.
    fn write_full_extent(
        fs: &FileSystem,
        name: &str,
        schedule: ExchangeSchedule,
    ) -> Vec<TwoPhaseReport> {
        let name = name.to_string();
        atomio_msg::run(P, fs.profile().net.clone(), move |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), &name);
            let total = P as u64 * BLOCK;
            let segs = vec![ViewSegment {
                file_off: 0,
                logical_off: 0,
                len: total,
            }];
            let buf = vec![(comm.rank() + 1) as u8; total as usize];
            let cfg = TwoPhaseConfig {
                aggregators: None,
                ranks_per_node: RPN,
                schedule,
            };
            two_phase_write(&comm, &file, &segs, &buf, 0, &cfg)
        })
    }

    #[test]
    fn multi_tier_cuts_inter_node_wire_bytes() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let flat = write_full_extent(&fs, "wf", ExchangeSchedule::Flat);
        let pipe = write_full_extent(
            &fs,
            "wp",
            ExchangeSchedule::Pipelined {
                round_stripes: 2,
                depth: 2,
            },
        );
        assert_eq!(fs.snapshot("wf").unwrap(), fs.snapshot("wp").unwrap());
        let flat_inter: u64 = flat.iter().map(|r| r.wire_inter_bytes).sum();
        let pipe_inter: u64 = pipe.iter().map(|r| r.wire_inter_bytes).sum();
        assert!(
            pipe_inter * 2 <= flat_inter,
            "pipelined {pipe_inter} should be at most half of flat {flat_inter}"
        );
        // The inter-node traffic can never exceed the unique bytes that
        // actually live on another node's aggregator.
        let written: u64 = pipe.iter().map(|r| r.bytes_written).sum();
        assert!(pipe_inter <= written);
        // And the intra-node tier carried real traffic in exchange.
        assert!(pipe.iter().map(|r| r.wire_intra_bytes).sum::<u64>() > 0);
    }

    #[test]
    fn pipelined_splits_work_into_rounds() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let pipe = write_all(
            &fs,
            "rounds",
            ExchangeSchedule::Pipelined {
                round_stripes: 1,
                depth: 2,
            },
        );
        // 64 KiB over 2 aggregators = 32 KiB domains; 4 KiB rounds → 8.
        assert!(pipe.iter().all(|r| r.rounds == 8), "{:?}", pipe[0].rounds);
        // Aggregators issued one write per round, not one monolith.
        let agg_runs = pipe.iter().map(|r| r.write_runs).max().unwrap();
        assert!(agg_runs >= 8, "expected per-round writes, got {agg_runs}");
    }

    #[test]
    fn empty_request_is_a_clean_noop() {
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let reports = atomio_msg::run(4, fs.profile().net.clone(), |comm| {
            let file = fs.open(comm.rank(), comm.clock().clone(), "nothing");
            let cfg = TwoPhaseConfig {
                aggregators: None,
                ranks_per_node: 2,
                schedule: ExchangeSchedule::Pipelined {
                    round_stripes: 0,
                    depth: 2,
                },
            };
            two_phase_write(&comm, &file, &[], &[], 0, &cfg)
        });
        assert!(reports
            .iter()
            .all(|r| r.aggregator_count == 0 && r.bytes_written == 0 && r.rounds == 0));
    }

    /// Torn round: a server crashes under an aggregator's mid-run round
    /// write. The fault-aware path writes synchronously, the client's
    /// retry/backoff loop rides out the rejections, and the finished file
    /// is still byte-identical to a fault-free flat run.
    #[test]
    fn torn_round_crash_recovers_and_matches_flat() {
        use atomio_pfs::{FaultAction, FaultPlan, FaultSite, RestartPolicy};
        let clean = FileSystem::new(PlatformProfile::fast_test());
        write_all(&clean, "ref", ExchangeSchedule::Flat);

        // With 1-stripe rounds and two aggregators, server 0 serves round
        // writes at rounds 0 and 4; its 3rd request is an aggregator write
        // in the middle of the round sequence.
        let plan = FaultPlan::none().with(
            FaultSite::ServerRequest { server: 0 },
            3,
            FaultAction::CrashServer {
                restart: RestartPolicy::Rejections(2),
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let pipe = write_all(
            &fs,
            "torn",
            ExchangeSchedule::Pipelined {
                round_stripes: 1,
                depth: 2,
            },
        );
        assert_eq!(
            clean.snapshot("ref").unwrap(),
            fs.snapshot("torn").unwrap(),
            "crash + recovery must not change the file image"
        );
        assert!(
            pipe.iter().all(|r| r.write_errors == 0),
            "recovered writes must not surface as errors"
        );
        let fstats = fs.fault_stats();
        assert_eq!(fstats.server_crashes, 1, "the planned crash must fire");
        assert!(
            fstats.rejections >= 2,
            "the crash must actually reject work"
        );
    }

    /// A server that never comes back: the write path must surface typed
    /// errors through the report — no panics, no hangs, and every healthy
    /// rank still completes the collective.
    #[test]
    fn unrecoverable_crash_surfaces_write_errors() {
        use atomio_pfs::{FaultAction, FaultPlan, FaultSite, RestartPolicy};
        let plan = FaultPlan::none().with(
            FaultSite::ServerRequest { server: 1 },
            2,
            FaultAction::CrashServer {
                restart: RestartPolicy::Manual,
            },
        );
        let fs = FileSystem::with_faults(PlatformProfile::fast_test(), plan);
        let pipe = write_all(
            &fs,
            "dead",
            ExchangeSchedule::Pipelined {
                round_stripes: 1,
                depth: 2,
            },
        );
        let errors: usize = pipe.iter().map(|r| r.write_errors).sum();
        assert!(errors >= 1, "a dead server must be reported, got {pipe:?}");
    }

    #[test]
    fn one_rank_per_node_still_matches_flat() {
        // Degenerate topology: every rank its own leader; the node tier is
        // a self-gather and the leader exchange spans everyone.
        let fs = FileSystem::new(PlatformProfile::fast_test());
        let run_one = |fs: &FileSystem, name: &str, schedule| {
            let name = name.to_string();
            atomio_msg::run(4, fs.profile().net.clone(), move |comm| {
                let file = fs.open(comm.rank(), comm.clock().clone(), &name);
                let segs = vec![ViewSegment {
                    file_off: comm.rank() as u64 * 6000,
                    logical_off: 0,
                    len: 9000, // overlaps the next rank by 3000
                }];
                let buf = vec![(comm.rank() + 10) as u8; 9000];
                let cfg = TwoPhaseConfig {
                    aggregators: Some(2),
                    ranks_per_node: 1,
                    schedule,
                };
                two_phase_write(&comm, &file, &segs, &buf, 0, &cfg)
            })
        };
        run_one(&fs, "f1", ExchangeSchedule::Flat);
        run_one(
            &fs,
            "p1",
            ExchangeSchedule::Pipelined {
                round_stripes: 1,
                depth: 1,
            },
        );
        assert_eq!(fs.snapshot("f1").unwrap(), fs.snapshot("p1").unwrap());
    }
}
