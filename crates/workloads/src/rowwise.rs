use atomio_interval::IntervalSet;

use crate::layout::{Partition, WorkloadError};

/// Row-wise partitioning of an M×N byte array over P processes with R
/// overlapped rows between neighbours (paper Figure 3a).
///
/// Because the array is stored row-major, every rank's view is one
/// *contiguous* file extent — which is why the paper notes that on a POSIX
/// file system the row-wise case gets MPI atomicity "for free" from a
/// single `write()` per process (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowWise {
    pub m: u64,
    pub n: u64,
    pub p: usize,
    /// Overlapped rows between consecutive ranks (even).
    pub r: u64,
}

impl RowWise {
    pub fn new(m: u64, n: u64, p: usize, r: u64) -> Result<Self, WorkloadError> {
        if p == 0 {
            return Err(WorkloadError::NoProcesses);
        }
        if m == 0 || n == 0 {
            return Err(WorkloadError::Indivisible {
                what: "array dim",
                size: 0,
                by: 1,
            });
        }
        if !m.is_multiple_of(p as u64) {
            return Err(WorkloadError::Indivisible {
                what: "rows",
                size: m,
                by: p as u64,
            });
        }
        if !r.is_multiple_of(2) {
            return Err(WorkloadError::OddOverlap(r));
        }
        if p > 1 && r > m / p as u64 {
            return Err(WorkloadError::OverlapTooLarge {
                overlap: r,
                block: m / p as u64,
            });
        }
        Ok(RowWise { m, n, p, r })
    }

    pub fn file_bytes(&self) -> u64 {
        self.m * self.n
    }

    /// Rows in `rank`'s view (`M/P + R` interior, `M/P + R/2` at the edges).
    pub fn height(&self, rank: usize) -> u64 {
        let base = self.m / self.p as u64;
        if self.p == 1 {
            base
        } else if rank == 0 || rank == self.p - 1 {
            base + self.r / 2
        } else {
            base + self.r
        }
    }

    /// First row of `rank`'s view.
    pub fn start_row(&self, rank: usize) -> u64 {
        if rank == 0 {
            0
        } else {
            rank as u64 * (self.m / self.p as u64) - self.r / 2
        }
    }

    pub fn partition(&self, rank: usize) -> Partition {
        assert!(rank < self.p);
        Partition::subarray(
            rank,
            vec![self.m, self.n],
            vec![self.height(rank), self.n],
            vec![self.start_row(rank), 0],
        )
        .expect("validated geometry")
    }

    pub fn all_views(&self) -> Vec<IntervalSet> {
        (0..self.p).map(|k| self.partition(k).footprint()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_contiguous() {
        // The key §3.2 property: row blocks of a row-major array are single
        // contiguous extents, so one write() per process suffices.
        let w = RowWise::new(64, 32, 8, 4).unwrap();
        for k in 0..8 {
            let part = w.partition(k);
            assert!(
                part.filetype.is_contiguous(),
                "rank {k} typemap must be one run"
            );
            assert_eq!(part.footprint().run_count(), 1);
            let segs = part.view.segments(0, part.data_bytes());
            assert_eq!(
                segs.len(),
                1,
                "rank {k}: a single write() call covers the view"
            );
        }
    }

    #[test]
    fn neighbours_overlap_r_rows() {
        let w = RowWise::new(64, 32, 8, 4).unwrap();
        let views = w.all_views();
        for k in 0..7 {
            let shared = views[k].intersect(&views[k + 1]);
            assert_eq!(shared.total_len(), w.r * w.n);
        }
        assert!(!views[0].overlaps(&views[2]));
    }

    #[test]
    fn heights_sum_with_ghosts() {
        let w = RowWise::new(64, 32, 8, 4).unwrap();
        let total: u64 = (0..8).map(|k| w.height(k)).sum();
        assert_eq!(total, w.m + (w.p as u64 - 1) * w.r);
    }

    #[test]
    fn union_covers_file() {
        let w = RowWise::new(16, 8, 4, 2).unwrap();
        let union = w
            .all_views()
            .into_iter()
            .fold(IntervalSet::new(), |acc, v| acc.union(&v));
        assert_eq!(union.total_len(), w.file_bytes());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RowWise::new(30, 8, 4, 2).is_err());
        assert!(RowWise::new(32, 8, 4, 1).is_err());
        assert!(RowWise::new(32, 8, 4, 10).is_err());
    }
}
