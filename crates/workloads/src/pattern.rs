//! Verification fill patterns.
//!
//! Each rank writes bytes that encode *who wrote them*, so the atomicity
//! verifier can decide, for every overlapped region, which rank's data
//! survived. Patterns must be pairwise distinct at every file offset;
//! both generators below guarantee that for up to 251 ranks.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Constant per-rank stamp: every byte rank `r` writes is `stamp_byte(r)`.
pub fn rank_stamp(rank: usize) -> impl Fn(u64) -> u8 + Clone {
    let b = stamp_byte(rank);
    move |_offset| b
}

/// The stamp byte for `rank` (distinct for ranks 0..=250, never 0 so
/// unwritten zero bytes are distinguishable).
pub fn stamp_byte(rank: usize) -> u8 {
    (rank % 251 + 1) as u8
}

/// Stamps for all ranks `0..p`, in rank order.
pub fn rank_stamps(p: usize) -> Vec<impl Fn(u64) -> u8 + Clone> {
    (0..p).map(rank_stamp).collect()
}

/// Position-dependent pattern: mixes the file offset into the byte while
/// keeping ranks pairwise distinct at every offset. Catches bugs a
/// constant stamp cannot (e.g. data written to the wrong offset).
pub fn offset_stamp(rank: usize) -> impl Fn(u64) -> u8 + Clone {
    let salt = (rank % 251) as u64;
    move |offset| {
        let h = offset.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        // 251 is prime: adding distinct salts mod 251 keeps ranks distinct
        // at every offset, and +1 keeps the byte nonzero.
        ((h % 251 + salt) % 251 + 1) as u8
    }
}

/// Offset-stamps for all ranks `0..p`.
pub fn offset_stamps(p: usize) -> Vec<impl Fn(u64) -> u8 + Clone> {
    (0..p).map(offset_stamp).collect()
}

/// A reproducible random buffer (workload payloads that don't need
/// verification).
pub fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_distinct_and_nonzero() {
        let stamps: Vec<u8> = (0..251).map(stamp_byte).collect();
        for (i, &a) in stamps.iter().enumerate() {
            assert_ne!(a, 0);
            for &b in &stamps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn offset_stamps_distinct_across_ranks_at_every_offset() {
        let pats: Vec<_> = offset_stamps(16);
        for offset in (0..10_000u64).step_by(97) {
            let vals: Vec<u8> = pats.iter().map(|p| p(offset)).collect();
            for i in 0..vals.len() {
                for j in (i + 1)..vals.len() {
                    assert_ne!(vals[i], vals[j], "offset {offset}: ranks {i},{j} collide");
                }
            }
        }
    }

    #[test]
    fn offset_stamp_varies_with_position() {
        let p = offset_stamp(3);
        let distinct: std::collections::HashSet<u8> = (0..1000).map(&p).collect();
        assert!(distinct.len() > 50, "pattern should vary with offset");
    }

    #[test]
    fn random_bytes_reproducible() {
        assert_eq!(random_bytes(42, 64), random_bytes(42, 64));
        assert_ne!(random_bytes(42, 64), random_bytes(43, 64));
    }
}
