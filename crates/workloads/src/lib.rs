//! Workload generators for the paper's experiments.
//!
//! The paper's motivating access patterns (§1, §3.1):
//!
//! * [`ColWise`] — column-wise partitioning of an M×N byte array with R
//!   overlapped columns between neighbouring ranks (Figure 3b, the pattern
//!   used for every measurement in Figure 8);
//! * [`RowWise`] — row-wise partitioning with R overlapped rows
//!   (Figure 3a); each rank's view is *contiguous* in the file, which is
//!   why POSIX atomicity suffices there (§3.2);
//! * [`BlockBlock`] — 2-D block-block decomposition with ghost cells
//!   overlapping up to eight neighbours (Figure 1, the ghosting pattern of
//!   the earth-climate / astrophysics applications the paper cites);
//! * [`IndependentStrided`] — periodic *independent* writers with
//!   configurable per-run overlap: no collective call, no view exchange —
//!   the workload class only locking, list I/O and data sieving can make
//!   atomic (paper §5);
//! * [`ReaderWriter`] — mixed reader-writer rounds over rank-owned blocks
//!   (checkpoint-then-reread and producer-consumer presets): the temporal
//!   access shapes the lock-driven cache-coherence subsystem is measured
//!   on, with round-stamped bytes so a stale read is detectable by value;
//! * [`CrashRecovery`] — the reader-writer rounds run under a seeded fault
//!   schedule (server crashes mid-flush, torn journal appends, client
//!   deaths), with a checker that classifies every verification read as
//!   clean, stale, torn or corrupt — the workload the recovery protocol's
//!   atomicity guarantee is asserted on.
//!
//! Every generator produces [`Partition`]s carrying the rank's subarray
//! filetype, its [`FileView`](atomio_dtype::FileView) and helpers to build verification buffers
//! ([`pattern`]) whose bytes encode the writing rank, so the
//! `atomio-core` verifier can reconstruct who wrote what.

mod crash;
mod ghost;
mod independent;
mod layout;
pub mod pattern;
mod rowwise;
mod rw;

pub use crash::{CrashRecovery, ReadAnomaly};
pub use ghost::BlockBlock;
pub use independent::IndependentStrided;
pub use layout::{Partition, WorkloadError};
pub use rowwise::RowWise;
pub use rw::{ReaderWriter, RwPreset};

mod colwise;
pub use colwise::ColWise;
