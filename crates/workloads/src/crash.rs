use crate::layout::WorkloadError;
use crate::rw::{ReaderWriter, RwPreset};

/// What a verification read observed when it did **not** see the bytes the
/// round contract promises. The classification is what makes fault runs
/// debuggable: a `Stale` read points at a lost or unreplayed flush, a
/// `Torn` read at a non-atomic recovery (some bytes replayed, some not),
/// and `Corrupt` at bytes no round ever wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAnomaly {
    /// Every byte is uniform but carries an *earlier* round's stamp of the
    /// expected writer: the read landed before (or instead of) the round's
    /// flush — the classic lost-revocation / unreplayed-journal symptom.
    Stale {
        /// Rounds behind the expected stamp (≥ 1).
        rounds_behind: u64,
        got: u8,
        expected: u8,
    },
    /// The buffer mixes two or more stamps: recovery (or a crashed flush)
    /// applied only part of the block — exactly the §2.1 torn outcome the
    /// write-ahead journal exists to prevent.
    Torn {
        /// Offset (within the read) of the first byte that disagreed with
        /// the byte at offset 0.
        first_differing: u64,
        stamps: (u8, u8),
    },
    /// Uniform, but not any stamp this writer ever produced.
    Corrupt { got: u8, expected: u8 },
}

impl std::fmt::Display for ReadAnomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadAnomaly::Stale {
                rounds_behind,
                got,
                expected,
            } => write!(
                f,
                "stale read: stamp {got:#04x} is {rounds_behind} round(s) behind expected \
                 {expected:#04x}"
            ),
            ReadAnomaly::Torn {
                first_differing,
                stamps,
            } => write!(
                f,
                "torn read: stamps {:#04x} and {:#04x} mixed (first divergence at byte {})",
                stamps.0, stamps.1, first_differing
            ),
            ReadAnomaly::Corrupt { got, expected } => {
                write!(
                    f,
                    "corrupt read: {got:#04x} is no stamp (expected {expected:#04x})"
                )
            }
        }
    }
}

impl std::error::Error for ReadAnomaly {}

/// Crash-recovery workload: [`ReaderWriter`]'s round-stamped
/// checkpoint-then-reread rounds run *under a fault schedule* — server
/// crashes mid-flush, torn journal appends, dropped revocations, client
/// deaths — with a checker that classifies every verification read as
/// clean, stale, torn or corrupt ([`ReadAnomaly`]).
///
/// The workload itself stays file-system-agnostic: it owns the geometry,
/// the stamp algebra and the checker, plus the `(seed, faults)` pair the
/// harness feeds to `FaultPlan::seeded` (atomio-pfs) so a run is fully
/// reproducible from this one struct. The atomicity contract under test:
/// after recovery, **every** read must return some *complete* round's
/// stamp — faults may cost time (retries, replays) and may legitimately
/// lose *un-synced* write-behind data of a killed client, but they must
/// never manufacture a torn or corrupt block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecovery {
    /// The underlying round-stamped reader-writer geometry.
    pub rw: ReaderWriter,
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Number of fault events to schedule (0 = fault-free control run,
    /// which must be byte-identical to plain [`ReaderWriter`]).
    pub faults: usize,
}

impl CrashRecovery {
    /// Checkpoint-then-reread geometry (the restart-file pattern crash
    /// recovery is about) with a seeded fault schedule.
    pub fn new(
        p: usize,
        block: u64,
        rounds: u64,
        rereads: u64,
        seed: u64,
        faults: usize,
    ) -> Result<Self, WorkloadError> {
        Ok(CrashRecovery {
            rw: ReaderWriter::new(p, block, rounds, rereads, RwPreset::CheckpointReread)?,
            seed,
            faults,
        })
    }

    /// The fault-free control run of the same geometry and seed.
    pub fn fault_free(&self) -> CrashRecovery {
        CrashRecovery { faults: 0, ..*self }
    }

    /// Decode a stamp byte back to its `(writer, round)` pair; `None` for
    /// 0 (never written) and for values past the last round.
    pub fn decode(&self, stamp: u8) -> Option<(usize, u64)> {
        let v = (stamp as u64).checked_sub(1)?;
        let (writer, round) = ((v % self.rw.p as u64) as usize, v / self.rw.p as u64);
        (round < self.rw.rounds).then_some((writer, round))
    }

    /// Classify one verification read: `rank` re-read its round-`round`
    /// checkpoint and got `data`. `Ok(())` iff every byte carries exactly
    /// this round's stamp.
    pub fn verify_read(&self, rank: usize, round: u64, data: &[u8]) -> Result<(), ReadAnomaly> {
        let expected = self.rw.stamp(self.rw.read_target(rank), round);
        let first = match data.first() {
            None => return Ok(()),
            Some(&b) => b,
        };
        if let Some(pos) = data.iter().position(|&b| b != first) {
            return Err(ReadAnomaly::Torn {
                first_differing: pos as u64,
                stamps: (first, data[pos]),
            });
        }
        if first == expected {
            return Ok(());
        }
        match self.decode(first) {
            Some((w, r)) if w == self.rw.read_target(rank) && r < round => {
                Err(ReadAnomaly::Stale {
                    rounds_behind: round - r,
                    got: first,
                    expected,
                })
            }
            _ => Err(ReadAnomaly::Corrupt {
                got: first,
                expected,
            }),
        }
    }

    /// Classify a whole-file snapshot taken after recovery: every rank's
    /// block must hold **some** complete round's stamp of its owner (a
    /// crash may roll a killed client's un-synced round back, never tear
    /// one). Returns the per-rank round each block survived at.
    pub fn verify_snapshot(&self, snap: &[u8]) -> Result<Vec<u64>, (usize, ReadAnomaly)> {
        let mut survived = Vec::with_capacity(self.rw.p);
        for rank in 0..self.rw.p {
            let range = self.rw.owner_range(rank);
            let block = &snap[range.start as usize..range.end as usize];
            let first = block[0];
            if let Some(pos) = block.iter().position(|&b| b != first) {
                return Err((
                    rank,
                    ReadAnomaly::Torn {
                        first_differing: pos as u64,
                        stamps: (first, block[pos]),
                    },
                ));
            }
            match self.decode(first) {
                Some((w, r)) if w == rank => survived.push(r),
                _ => {
                    return Err((
                        rank,
                        ReadAnomaly::Corrupt {
                            got: first,
                            expected: self.rw.stamp(rank, self.rw.rounds - 1),
                        },
                    ))
                }
            }
        }
        Ok(survived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CrashRecovery {
        CrashRecovery::new(4, 64, 3, 2, 0xC0FFEE, 5).unwrap()
    }

    #[test]
    fn decode_inverts_stamp() {
        let c = spec();
        for round in 0..c.rw.rounds {
            for rank in 0..c.rw.p {
                assert_eq!(c.decode(c.rw.stamp(rank, round)), Some((rank, round)));
            }
        }
        assert_eq!(c.decode(0), None);
        assert_eq!(c.decode(c.rw.stamp(c.rw.p - 1, c.rw.rounds - 1) + 1), None);
    }

    #[test]
    fn clean_read_passes() {
        let c = spec();
        let buf = vec![c.rw.stamp(1, 2); 64];
        assert_eq!(c.verify_read(1, 2, &buf), Ok(()));
    }

    #[test]
    fn stale_read_is_classified_with_lag() {
        let c = spec();
        let buf = vec![c.rw.stamp(2, 0); 64];
        match c.verify_read(2, 2, &buf) {
            Err(ReadAnomaly::Stale { rounds_behind, .. }) => assert_eq!(rounds_behind, 2),
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn torn_read_reports_divergence_point() {
        let c = spec();
        let mut buf = vec![c.rw.stamp(0, 1); 64];
        buf[40..].fill(c.rw.stamp(0, 0));
        match c.verify_read(0, 1, &buf) {
            Err(ReadAnomaly::Torn {
                first_differing, ..
            }) => assert_eq!(first_differing, 40),
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn foreign_stamp_is_corrupt_not_stale() {
        let c = spec();
        // Rank 3's earlier stamp in rank 0's checkpoint is corruption, not
        // staleness: rank 0 never wrote it.
        let buf = vec![c.rw.stamp(3, 0); 64];
        assert!(matches!(
            c.verify_read(0, 1, &buf),
            Err(ReadAnomaly::Corrupt { .. })
        ));
    }

    #[test]
    fn snapshot_checker_accepts_rolled_back_rounds() {
        let c = spec();
        let mut snap = c.rw.expected_final();
        // Rank 2's block rolled back to round 0 (its client died before
        // syncing later rounds): legal, reported as survived-at-0.
        let range = c.rw.owner_range(2);
        snap[range.start as usize..range.end as usize].fill(c.rw.stamp(2, 0));
        assert_eq!(c.verify_snapshot(&snap).unwrap(), vec![2, 2, 0, 2]);
        // But a torn block is never legal.
        snap[range.start as usize] = c.rw.stamp(2, 1);
        assert!(matches!(
            c.verify_snapshot(&snap),
            Err((2, ReadAnomaly::Torn { .. }))
        ));
    }
}
