use std::sync::Arc;

use atomio_dtype::{ArrayOrder, Datatype, DatatypeError, FileView, ViewError};
use atomio_interval::IntervalSet;

/// Errors from workload construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Dimension does not divide evenly among processes.
    Indivisible {
        what: &'static str,
        size: u64,
        by: u64,
    },
    /// Overlap/ghost width too large for the block size.
    OverlapTooLarge { overlap: u64, block: u64 },
    /// Overlap must be even (R/2 columns on each side, paper §3.1).
    OddOverlap(u64),
    /// A parameter is outside its documented domain.
    Invalid {
        what: &'static str,
        got: u64,
        constraint: &'static str,
    },
    /// No processes.
    NoProcesses,
    /// Underlying datatype/view construction failed.
    Datatype(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Indivisible { what, size, by } => {
                write!(f, "{what} {size} not divisible by {by}")
            }
            WorkloadError::OverlapTooLarge { overlap, block } => {
                write!(f, "overlap {overlap} exceeds block size {block}")
            }
            WorkloadError::OddOverlap(r) => write!(f, "overlap {r} must be even"),
            WorkloadError::Invalid {
                what,
                got,
                constraint,
            } => write!(f, "{what} = {got}: {constraint}"),
            WorkloadError::NoProcesses => write!(f, "need at least one process"),
            WorkloadError::Datatype(e) => write!(f, "datatype: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<DatatypeError> for WorkloadError {
    fn from(e: DatatypeError) -> Self {
        WorkloadError::Datatype(e.to_string())
    }
}

impl From<ViewError> for WorkloadError {
    fn from(e: ViewError) -> Self {
        WorkloadError::Datatype(e.to_string())
    }
}

/// One rank's share of a distributed array: the subarray filetype, its file
/// view, and enough geometry to build and verify data buffers.
#[derive(Debug, Clone)]
pub struct Partition {
    pub rank: usize,
    /// Full-array dimensions in elements (bytes).
    pub sizes: Vec<u64>,
    /// This rank's sub-block dimensions.
    pub subsizes: Vec<u64>,
    /// This rank's sub-block start corner.
    pub starts: Vec<u64>,
    /// The subarray filetype (extent = whole array).
    pub filetype: Arc<Datatype>,
    /// File view with displacement 0.
    pub view: FileView,
}

impl Partition {
    /// Build a C-order subarray partition of a byte array.
    pub fn subarray(
        rank: usize,
        sizes: Vec<u64>,
        subsizes: Vec<u64>,
        starts: Vec<u64>,
    ) -> Result<Self, WorkloadError> {
        let filetype =
            Datatype::subarray(&sizes, &subsizes, &starts, ArrayOrder::C, Datatype::byte())?;
        let view = FileView::new(0, filetype.clone())?;
        Ok(Partition {
            rank,
            sizes,
            subsizes,
            starts,
            filetype,
            view,
        })
    }

    /// Number of data bytes this rank writes (one filetype tile).
    pub fn data_bytes(&self) -> u64 {
        self.view.tile_size()
    }

    /// The set of file bytes this rank's view covers.
    pub fn footprint(&self) -> IntervalSet {
        self.view.footprint(self.data_bytes())
    }

    /// Build this rank's write buffer such that the byte destined for file
    /// offset `o` equals `pattern(o)` — the property the atomicity
    /// verifier relies on.
    pub fn fill<P: Fn(u64) -> u8>(&self, pattern: P) -> Vec<u8> {
        let len = self.data_bytes();
        let mut buf = vec![0u8; len as usize];
        for seg in self.view.segments(0, len) {
            for i in 0..seg.len {
                buf[(seg.logical_off + i) as usize] = pattern(seg.file_off + i);
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subarray_partition_geometry() {
        let p = Partition::subarray(1, vec![8, 16], vec![8, 4], vec![0, 4]).unwrap();
        assert_eq!(p.data_bytes(), 32);
        assert_eq!(p.footprint().total_len(), 32);
        assert_eq!(p.footprint().run_count(), 8, "one run per row");
    }

    #[test]
    fn fill_places_pattern_by_file_offset() {
        let p = Partition::subarray(0, vec![4, 8], vec![4, 2], vec![0, 3]).unwrap();
        let buf = p.fill(|o| (o % 256) as u8);
        // Logical byte 0 lands at file offset 3; logical 2 at 8+3=11...
        assert_eq!(buf[0], 3);
        assert_eq!(buf[1], 4);
        assert_eq!(buf[2], 11);
        assert_eq!(buf[3], 12);
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn invalid_subarray_reports_error() {
        let e = Partition::subarray(0, vec![4, 4], vec![5, 1], vec![0, 0]).unwrap_err();
        assert!(matches!(e, WorkloadError::Datatype(_)));
    }
}
