use atomio_interval::IntervalSet;

use crate::layout::{Partition, WorkloadError};

/// 2-D block-block decomposition with ghost cells (paper Figure 1).
///
/// The array is split over a `pr × pc` process grid; every process's view
/// is its owned block *expanded* by `g` ghost rows/columns on each side
/// (clipped at the array edges), so a process's view overlaps up to eight
/// neighbours — "the ghost cells of P overlap with its 8 neighbor
/// processes which results some areas are accessed by more than one
/// processes simultaneously".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBlock {
    pub rows: u64,
    pub cols: u64,
    /// Process grid height.
    pub pr: usize,
    /// Process grid width.
    pub pc: usize,
    /// Ghost-cell width on every side.
    pub g: u64,
}

impl BlockBlock {
    pub fn new(rows: u64, cols: u64, pr: usize, pc: usize, g: u64) -> Result<Self, WorkloadError> {
        if pr == 0 || pc == 0 {
            return Err(WorkloadError::NoProcesses);
        }
        if !rows.is_multiple_of(pr as u64) {
            return Err(WorkloadError::Indivisible {
                what: "rows",
                size: rows,
                by: pr as u64,
            });
        }
        if !cols.is_multiple_of(pc as u64) {
            return Err(WorkloadError::Indivisible {
                what: "cols",
                size: cols,
                by: pc as u64,
            });
        }
        let (bh, bw) = (rows / pr as u64, cols / pc as u64);
        if g > bh || g > bw {
            return Err(WorkloadError::OverlapTooLarge {
                overlap: g,
                block: bh.min(bw),
            });
        }
        Ok(BlockBlock {
            rows,
            cols,
            pr,
            pc,
            g,
        })
    }

    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }

    pub fn file_bytes(&self) -> u64 {
        self.rows * self.cols
    }

    /// Process-grid coordinates of `rank` (row-major rank placement).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// This rank's view block as `(row_start, col_start, height, width)`,
    /// ghost-expanded and clipped.
    pub fn block(&self, rank: usize) -> (u64, u64, u64, u64) {
        let (i, j) = self.coords(rank);
        let bh = self.rows / self.pr as u64;
        let bw = self.cols / self.pc as u64;
        let r0 = (i as u64 * bh).saturating_sub(self.g);
        let c0 = (j as u64 * bw).saturating_sub(self.g);
        let r1 = ((i as u64 + 1) * bh + self.g).min(self.rows);
        let c1 = ((j as u64 + 1) * bw + self.g).min(self.cols);
        (r0, c0, r1 - r0, c1 - c0)
    }

    pub fn partition(&self, rank: usize) -> Partition {
        assert!(rank < self.nprocs());
        let (r0, c0, h, w) = self.block(rank);
        Partition::subarray(rank, vec![self.rows, self.cols], vec![h, w], vec![r0, c0])
            .expect("validated geometry")
    }

    pub fn all_views(&self) -> Vec<IntervalSet> {
        (0..self.nprocs())
            .map(|k| self.partition(k).footprint())
            .collect()
    }

    /// Ranks whose views overlap `rank`'s view.
    pub fn overlapping_neighbours(&self, rank: usize) -> Vec<usize> {
        let views = self.all_views();
        (0..self.nprocs())
            .filter(|&k| k != rank && views[k].overlaps(&views[rank]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_process_overlaps_eight_neighbours() {
        // 3x3 grid, center = rank 4: exactly the Figure 1 situation.
        let b = BlockBlock::new(12, 12, 3, 3, 1).unwrap();
        let nb = b.overlapping_neighbours(4);
        assert_eq!(nb, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    }

    #[test]
    fn corner_process_overlaps_three() {
        let b = BlockBlock::new(12, 12, 3, 3, 1).unwrap();
        assert_eq!(b.overlapping_neighbours(0), vec![1, 3, 4]);
        assert_eq!(b.overlapping_neighbours(8), vec![4, 5, 7]);
    }

    #[test]
    fn ghost_blocks_clip_at_edges() {
        let b = BlockBlock::new(12, 12, 3, 3, 2).unwrap();
        assert_eq!(b.block(0), (0, 0, 6, 6)); // corner: +g right/bottom only
        assert_eq!(b.block(4), (2, 2, 8, 8)); // center: +g all sides
        assert_eq!(b.block(8), (6, 6, 6, 6));
    }

    #[test]
    fn zero_ghost_means_disjoint() {
        let b = BlockBlock::new(8, 8, 2, 2, 0).unwrap();
        for k in 0..4 {
            assert!(b.overlapping_neighbours(k).is_empty());
        }
        let union = b
            .all_views()
            .into_iter()
            .fold(IntervalSet::new(), |acc, v| acc.union(&v));
        assert_eq!(union.total_len(), b.file_bytes());
    }

    #[test]
    fn views_cover_file_with_ghosts() {
        let b = BlockBlock::new(16, 16, 2, 2, 2).unwrap();
        let union = b
            .all_views()
            .into_iter()
            .fold(IntervalSet::new(), |acc, v| acc.union(&v));
        assert_eq!(union.total_len(), b.file_bytes());
    }

    #[test]
    fn rejects_bad_grids() {
        assert!(BlockBlock::new(10, 12, 3, 3, 1).is_err());
        assert!(BlockBlock::new(12, 10, 3, 3, 1).is_err());
        assert!(BlockBlock::new(12, 12, 0, 3, 1).is_err());
        assert!(BlockBlock::new(12, 12, 3, 3, 5).is_err());
    }

    #[test]
    fn coords_roundtrip() {
        let b = BlockBlock::new(12, 12, 3, 4, 0).unwrap();
        assert_eq!(b.coords(0), (0, 0));
        assert_eq!(b.coords(5), (1, 1));
        assert_eq!(b.coords(11), (2, 3));
        assert_eq!(b.nprocs(), 12);
    }
}
