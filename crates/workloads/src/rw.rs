use atomio_interval::{ByteRange, IntervalSet};

use crate::layout::WorkloadError;

/// Which reader-writer interaction pattern a [`ReaderWriter`] round runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwPreset {
    /// Checkpoint-then-reread: every round, each rank writes its own
    /// disjoint block (the checkpoint) and then re-reads **its own** block
    /// `rereads` times (verification / restart reads). The access pattern
    /// is conflict-free, so under lock-driven coherence each rank's token
    /// is acquired once and every re-read is served from its warm cache —
    /// the workload where blanket close-to-open invalidation hurts most.
    CheckpointReread,
    /// Producer-consumer ring: every round, each rank writes its own block
    /// and then reads its **left neighbour's** block (rank `r` consumes
    /// what rank `r-1 mod p` produced this round). Every round forces the
    /// consumer's acquisition to revoke the producer's token — flushing
    /// the producer's write-behind data and invalidating exactly the
    /// contested block — so the revocation protocol itself is on the hot
    /// path, and any coherence bug surfaces as a stale (previous-round)
    /// stamp.
    ProducerConsumer,
}

impl RwPreset {
    pub fn label(&self) -> &'static str {
        match self {
            RwPreset::CheckpointReread => "checkpoint-then-reread",
            RwPreset::ProducerConsumer => "producer-consumer",
        }
    }
}

/// Mixed reader-writer workload over `p` ranks owning disjoint contiguous
/// blocks of a shared file — the access shapes the coherence subsystem is
/// evaluated on (see [`RwPreset`]). Unlike the array-decomposition
/// workloads, the interesting axis here is *temporal*: who re-reads or
/// consumes which bytes when, and which accesses conflict across rounds.
///
/// File layout: rank `r`'s block is `[r·block, (r+1)·block)`; a round
/// rewrites every block in place with a round-stamped pattern
/// ([`ReaderWriter::stamp`]), so a reader can tell exactly which round's
/// data (and whose) it observed — a stale read is detectable by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderWriter {
    /// Ranks.
    pub p: usize,
    /// Bytes per rank-owned block.
    pub block: u64,
    /// Write(+read) rounds.
    pub rounds: u64,
    /// Reads of the target block per round (≥ 1).
    pub rereads: u64,
    /// Interaction pattern.
    pub preset: RwPreset,
}

impl ReaderWriter {
    pub fn new(
        p: usize,
        block: u64,
        rounds: u64,
        rereads: u64,
        preset: RwPreset,
    ) -> Result<Self, WorkloadError> {
        if p == 0 {
            return Err(WorkloadError::NoProcesses);
        }
        for (what, got) in [("block", block), ("rounds", rounds), ("rereads", rereads)] {
            if got == 0 {
                return Err(WorkloadError::Invalid {
                    what,
                    got,
                    constraint: "must be at least 1",
                });
            }
        }
        // Stamps encode (writer, round) in one byte; keep them unambiguous.
        if p as u64 * rounds > 250 {
            return Err(WorkloadError::Invalid {
                what: "p * rounds",
                got: p as u64 * rounds,
                constraint: "must be <= 250 so every (writer, round) stamp fits one \
                             unambiguous byte",
            });
        }
        Ok(ReaderWriter {
            p,
            block,
            rounds,
            rereads,
            preset,
        })
    }

    /// Total file bytes.
    pub fn file_bytes(&self) -> u64 {
        self.p as u64 * self.block
    }

    /// The block `rank` owns (and writes every round).
    pub fn owner_range(&self, rank: usize) -> ByteRange {
        assert!(rank < self.p);
        ByteRange::at(rank as u64 * self.block, self.block)
    }

    /// The block `rank` reads in a round: its own for
    /// [`RwPreset::CheckpointReread`], its left neighbour's for
    /// [`RwPreset::ProducerConsumer`].
    pub fn read_range(&self, rank: usize) -> ByteRange {
        match self.preset {
            RwPreset::CheckpointReread => self.owner_range(rank),
            RwPreset::ProducerConsumer => self.owner_range((rank + self.p - 1) % self.p),
        }
    }

    /// The rank whose block `rank` reads in a round.
    pub fn read_target(&self, rank: usize) -> usize {
        match self.preset {
            RwPreset::CheckpointReread => rank,
            RwPreset::ProducerConsumer => (rank + self.p - 1) % self.p,
        }
    }

    /// The byte every cell of `writer`'s block holds after `round`
    /// (0-based): distinct for every `(writer, round)` pair and never 0
    /// (so "round -1" — never written — is distinguishable too).
    pub fn stamp(&self, writer: usize, round: u64) -> u8 {
        (1 + round * self.p as u64 + writer as u64) as u8
    }

    /// Every rank's owned footprint, in rank order (for the atomicity
    /// checker).
    pub fn all_views(&self) -> Vec<IntervalSet> {
        (0..self.p)
            .map(|r| IntervalSet::from_range(self.owner_range(r)))
            .collect()
    }

    /// The expected whole-file contents after `rounds` complete rounds.
    pub fn expected_final(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.file_bytes() as usize];
        for r in 0..self.p {
            let range = self.owner_range(r);
            let v = self.stamp(r, self.rounds - 1);
            out[range.start as usize..range.end as usize].fill(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_reads_own_block() {
        let w = ReaderWriter::new(4, 1024, 3, 2, RwPreset::CheckpointReread).unwrap();
        assert_eq!(w.file_bytes(), 4096);
        for r in 0..4 {
            assert_eq!(w.read_range(r), w.owner_range(r));
            assert_eq!(w.read_target(r), r);
        }
        // Owned blocks are disjoint and tile the file.
        let union = w
            .all_views()
            .iter()
            .fold(IntervalSet::new(), |acc, v| acc.union(v));
        assert_eq!(union.run_count(), 1);
        assert_eq!(union.total_len(), 4096);
    }

    #[test]
    fn producer_consumer_reads_left_neighbour() {
        let w = ReaderWriter::new(4, 512, 2, 1, RwPreset::ProducerConsumer).unwrap();
        assert_eq!(w.read_target(0), 3);
        assert_eq!(w.read_target(1), 0);
        assert_eq!(w.read_range(2), w.owner_range(1));
    }

    #[test]
    fn stamps_are_unique_and_nonzero() {
        let w = ReaderWriter::new(5, 64, 7, 1, RwPreset::CheckpointReread).unwrap();
        let mut seen = std::collections::HashSet::new();
        for round in 0..w.rounds {
            for rank in 0..w.p {
                let s = w.stamp(rank, round);
                assert_ne!(s, 0);
                assert!(seen.insert(s), "stamp collision for ({rank}, {round})");
            }
        }
    }

    #[test]
    fn expected_final_reflects_last_round() {
        let w = ReaderWriter::new(2, 4, 3, 1, RwPreset::CheckpointReread).unwrap();
        let f = w.expected_final();
        assert_eq!(&f[0..4], &[w.stamp(0, 2); 4][..]);
        assert_eq!(&f[4..8], &[w.stamp(1, 2); 4][..]);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReaderWriter::new(0, 1, 1, 1, RwPreset::CheckpointReread).is_err());
        assert!(ReaderWriter::new(2, 0, 1, 1, RwPreset::CheckpointReread).is_err());
        assert!(ReaderWriter::new(2, 8, 1, 0, RwPreset::CheckpointReread).is_err());
        // Too many (writer, round) pairs for one-byte stamps.
        assert!(ReaderWriter::new(16, 8, 64, 1, RwPreset::CheckpointReread).is_err());
    }
}
