use std::sync::Arc;

use atomio_dtype::{Datatype, FileView};
use atomio_interval::IntervalSet;

use crate::layout::WorkloadError;

/// Independent noncontiguous writers with configurable overlap — the
/// workload class the collective strategies cannot touch, because the
/// ranks never meet in a collective call to exchange views (paper §5).
///
/// Each of `p` ranks issues `runs` runs of `run_len` bytes, one per
/// `stride`-byte period; rank `r`'s runs start `r·(run_len - overlap)`
/// into the period, so consecutive ranks share exactly `overlap` bytes of
/// every run (`overlap = 0` gives disjoint interleaved writers). This is
/// the access shape data sieving is built for: many small runs per rank,
/// periodic, with the §2 atomicity hazard concentrated in the per-run
/// overlap between neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndependentStrided {
    /// Ranks.
    pub p: usize,
    /// Runs per rank.
    pub runs: u64,
    /// Bytes per run.
    pub run_len: u64,
    /// Bytes per period (every rank writes one run per period).
    pub stride: u64,
    /// Bytes each run shares with the next rank's run (< `run_len`).
    pub overlap: u64,
}

impl IndependentStrided {
    pub fn new(
        p: usize,
        runs: u64,
        run_len: u64,
        stride: u64,
        overlap: u64,
    ) -> Result<Self, WorkloadError> {
        if p == 0 {
            return Err(WorkloadError::NoProcesses);
        }
        if runs == 0 || run_len == 0 {
            return Err(WorkloadError::Indivisible {
                what: "runs/run_len",
                size: 0,
                by: 1,
            });
        }
        if overlap >= run_len {
            return Err(WorkloadError::OverlapTooLarge {
                overlap,
                block: run_len,
            });
        }
        // All ranks' runs of one period must fit the period.
        let span = (p as u64 - 1) * (run_len - overlap) + run_len;
        if span > stride {
            return Err(WorkloadError::OverlapTooLarge {
                overlap: span,
                block: stride,
            });
        }
        Ok(IndependentStrided {
            p,
            runs,
            run_len,
            stride,
            overlap,
        })
    }

    /// Stride-aligned, zero-overlap interleaved writers: rank `r` owns the
    /// `r`-th `run_len`-byte slot of every `p·run_len`-byte period, so all
    /// footprints interleave tightly — every rank's bounding span covers
    /// virtually the whole file — while sharing **no** byte. The best case
    /// for exact-footprint list locking (full parallelism is admissible)
    /// and the worst case for bounding-span locks (every pair of spans
    /// overlaps); the `locking` bench and the list-locking tests are built
    /// on it.
    pub fn disjoint_interleaved(p: usize, runs: u64, run_len: u64) -> Result<Self, WorkloadError> {
        Self::new(p, runs, run_len, p as u64 * run_len, 0)
    }

    /// Data bytes each rank writes.
    pub fn data_bytes(&self) -> u64 {
        self.runs * self.run_len
    }

    /// Total file bytes spanned by the pattern.
    pub fn file_bytes(&self) -> u64 {
        (self.runs - 1) * self.stride + self.disp(self.p - 1) + self.run_len
    }

    /// File offset of `rank`'s first run.
    pub fn disp(&self, rank: usize) -> u64 {
        rank as u64 * (self.run_len - self.overlap)
    }

    /// `rank`'s filetype: `runs` blocks of `run_len` bytes, `stride` apart.
    pub fn filetype(&self) -> Arc<Datatype> {
        Datatype::vector(
            self.runs,
            self.run_len,
            self.stride as i64,
            Datatype::byte(),
        )
        .expect("validated geometry")
    }

    /// `rank`'s file view (the vector filetype at the rank's displacement).
    pub fn view(&self, rank: usize) -> FileView {
        assert!(rank < self.p);
        FileView::new(self.disp(rank), self.filetype()).expect("validated geometry")
    }

    /// The set of file bytes `rank` writes.
    pub fn footprint(&self, rank: usize) -> IntervalSet {
        self.view(rank).footprint(self.data_bytes())
    }

    /// Every rank's footprint, in rank order.
    pub fn all_views(&self) -> Vec<IntervalSet> {
        (0..self.p).map(|r| self.footprint(r)).collect()
    }

    /// Build `rank`'s write buffer so the byte destined for file offset
    /// `o` equals `pattern(o)` (what the atomicity verifier expects).
    pub fn fill<P: Fn(u64) -> u8>(&self, rank: usize, pattern: P) -> Vec<u8> {
        let view = self.view(rank);
        let len = self.data_bytes();
        let mut buf = vec![0u8; len as usize];
        for seg in view.segments(0, len) {
            for i in 0..seg.len {
                buf[(seg.logical_off + i) as usize] = pattern(seg.file_off + i);
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_and_overlap() {
        let w = IndependentStrided::new(3, 4, 10, 64, 4).unwrap();
        assert_eq!(w.data_bytes(), 40);
        assert_eq!(w.disp(0), 0);
        assert_eq!(w.disp(1), 6);
        assert_eq!(w.disp(2), 12);
        let views = w.all_views();
        // Neighbours share `overlap` bytes per run.
        assert_eq!(
            views[0].intersect(&views[1]).total_len(),
            w.runs * w.overlap
        );
        assert_eq!(
            views[1].intersect(&views[2]).total_len(),
            w.runs * w.overlap
        );
        // Non-neighbours don't overlap here (2·(run_len-overlap) ≥ run_len).
        assert!(!views[0].overlaps(&views[2]));
        // Each footprint is `runs` noncontiguous runs.
        assert_eq!(views[0].run_count(), 4);
    }

    #[test]
    fn zero_overlap_is_disjoint() {
        let w = IndependentStrided::new(4, 8, 16, 128, 0).unwrap();
        let views = w.all_views();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!views[i].overlaps(&views[j]), "ranks {i},{j}");
            }
        }
    }

    #[test]
    fn fill_places_pattern_by_file_offset() {
        let w = IndependentStrided::new(2, 3, 4, 32, 2).unwrap();
        let buf = w.fill(1, |o| (o % 251) as u8);
        // Rank 1's first run is at file offset 2.
        assert_eq!(buf[0], 2);
        assert_eq!(buf[3], 5);
        // Second run at 32 + 2.
        assert_eq!(buf[4], 34);
    }

    #[test]
    fn disjoint_interleaved_is_tight_and_disjoint() {
        let w = IndependentStrided::disjoint_interleaved(4, 8, 16).unwrap();
        assert_eq!(w.stride, 64);
        assert_eq!(w.overlap, 0);
        let views = w.all_views();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!views[i].overlaps(&views[j]), "ranks {i},{j}");
            }
        }
        // Slots pack the period exactly: the union is one contiguous block.
        let union = views.iter().fold(IntervalSet::new(), |acc, v| acc.union(v));
        assert_eq!(union.run_count(), 1);
        assert_eq!(union.total_len(), 4 * 8 * 16);
        // Every rank's bounding span covers (virtually) the whole file —
        // the interleaving that makes span locks all-conflicting.
        for (r, v) in views.iter().enumerate() {
            assert!(
                v.span().unwrap().len() as f64 > 0.75 * w.file_bytes() as f64,
                "rank {r} span too narrow"
            );
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(IndependentStrided::new(0, 1, 1, 8, 0).is_err());
        assert!(IndependentStrided::new(2, 0, 1, 8, 0).is_err());
        assert!(
            IndependentStrided::new(2, 1, 4, 8, 4).is_err(),
            "overlap == run_len"
        );
        // Period too small for all ranks' runs.
        assert!(IndependentStrided::new(4, 1, 4, 8, 0).is_err());
    }
}
