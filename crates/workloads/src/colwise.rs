use atomio_interval::IntervalSet;

use crate::layout::{Partition, WorkloadError};

/// Column-wise partitioning of an M×N byte array over P processes with R
/// overlapped columns between neighbours (paper Figure 3b) — the workload
/// of every Figure 8 measurement.
///
/// Interior ranks see `N/P + R` columns starting `R/2` left of their block;
/// the first and last ranks see `N/P + R/2` (paper §3.1). Each view is M
/// non-contiguous row segments, so this is exactly the pattern where POSIX
/// per-call atomicity fails to give MPI atomicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColWise {
    /// Rows (most significant axis), M.
    pub m: u64,
    /// Columns, N.
    pub n: u64,
    /// Processes, P.
    pub p: usize,
    /// Overlapped columns between consecutive ranks, R (even).
    pub r: u64,
}

impl ColWise {
    pub fn new(m: u64, n: u64, p: usize, r: u64) -> Result<Self, WorkloadError> {
        if p == 0 {
            return Err(WorkloadError::NoProcesses);
        }
        if m == 0 || n == 0 {
            return Err(WorkloadError::Indivisible {
                what: "array dim",
                size: 0,
                by: 1,
            });
        }
        if !n.is_multiple_of(p as u64) {
            return Err(WorkloadError::Indivisible {
                what: "columns",
                size: n,
                by: p as u64,
            });
        }
        if !r.is_multiple_of(2) {
            return Err(WorkloadError::OddOverlap(r));
        }
        if p > 1 && r > n / p as u64 {
            return Err(WorkloadError::OverlapTooLarge {
                overlap: r,
                block: n / p as u64,
            });
        }
        Ok(ColWise { m, n, p, r })
    }

    /// Total file size in bytes (M·N).
    pub fn file_bytes(&self) -> u64 {
        self.m * self.n
    }

    /// Width in columns of `rank`'s view.
    pub fn width(&self, rank: usize) -> u64 {
        let base = self.n / self.p as u64;
        if self.p == 1 {
            base
        } else if rank == 0 || rank == self.p - 1 {
            base + self.r / 2
        } else {
            base + self.r
        }
    }

    /// First column of `rank`'s view.
    pub fn start_col(&self, rank: usize) -> u64 {
        if rank == 0 {
            0
        } else {
            rank as u64 * (self.n / self.p as u64) - self.r / 2
        }
    }

    /// Build `rank`'s partition (subarray filetype + view), mirroring the
    /// `MPI_Type_create_subarray` call of the paper's Figure 4.
    pub fn partition(&self, rank: usize) -> Partition {
        assert!(rank < self.p);
        Partition::subarray(
            rank,
            vec![self.m, self.n],
            vec![self.m, self.width(rank)],
            vec![0, self.start_col(rank)],
        )
        .expect("validated geometry")
    }

    /// Every rank's view footprint, in rank order.
    pub fn all_views(&self) -> Vec<IntervalSet> {
        (0..self.p).map(|k| self.partition(k).footprint()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_starts_match_paper() {
        let c = ColWise::new(8, 64, 8, 4).unwrap();
        assert_eq!(c.width(0), 10); // N/P + R/2
        assert_eq!(c.width(3), 12); // N/P + R
        assert_eq!(c.width(7), 10);
        assert_eq!(c.start_col(0), 0);
        assert_eq!(c.start_col(1), 6); // 1*8 - 2
        assert_eq!(c.start_col(7), 54);
    }

    #[test]
    fn neighbours_overlap_exactly_r() {
        let c = ColWise::new(4, 48, 4, 6).unwrap();
        let views = c.all_views();
        for k in 0..3 {
            let shared = views[k].intersect(&views[k + 1]);
            assert_eq!(shared.total_len(), c.m * c.r, "ranks {k} and {}", k + 1);
        }
        // Non-neighbours don't overlap.
        assert!(!views[0].overlaps(&views[2]));
        assert!(!views[0].overlaps(&views[3]));
        assert!(!views[1].overlaps(&views[3]));
    }

    #[test]
    fn union_of_views_is_whole_file() {
        let c = ColWise::new(4, 32, 4, 4).unwrap();
        let union = c
            .all_views()
            .into_iter()
            .fold(IntervalSet::new(), |acc, v| acc.union(&v));
        assert_eq!(union.total_len(), c.file_bytes());
        assert_eq!(union.run_count(), 1);
    }

    #[test]
    fn views_are_noncontiguous_m_segments() {
        let c = ColWise::new(16, 64, 4, 4).unwrap();
        let part = c.partition(1);
        assert_eq!(part.footprint().run_count(), 16, "one run per row");
        assert!(!part.view.is_contiguous());
        assert_eq!(part.data_bytes(), 16 * c.width(1));
    }

    #[test]
    fn single_process_owns_everything() {
        let c = ColWise::new(4, 16, 1, 0).unwrap();
        let part = c.partition(0);
        assert_eq!(part.data_bytes(), 64);
        assert!(part.view.is_contiguous());
    }

    #[test]
    fn zero_overlap_partitions_disjoint() {
        let c = ColWise::new(4, 32, 4, 0).unwrap();
        let views = c.all_views();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(!views[i].overlaps(&views[j]));
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            ColWise::new(4, 30, 4, 2),
            Err(WorkloadError::Indivisible { .. })
        ));
        assert!(matches!(
            ColWise::new(4, 32, 4, 3),
            Err(WorkloadError::OddOverlap(3))
        ));
        assert!(matches!(
            ColWise::new(4, 32, 4, 10),
            Err(WorkloadError::OverlapTooLarge { .. })
        ));
        assert!(matches!(
            ColWise::new(4, 32, 0, 2),
            Err(WorkloadError::NoProcesses)
        ));
    }

    #[test]
    fn paper_experiment_dimensions() {
        // The three Figure 8 array sizes must validate for P = 4, 8, 16.
        for n in [8192u64, 32768, 262144] {
            for p in [4usize, 8, 16] {
                let c = ColWise::new(4096, n, p, 16).unwrap();
                assert_eq!(c.file_bytes(), 4096 * n);
            }
        }
        // 32 MB / 128 MB / 1 GB as the paper states.
        assert_eq!(4096u64 * 8192, 32 << 20);
        assert_eq!(4096u64 * 32768, 128 << 20);
        assert_eq!(4096u64 * 262144, 1 << 30);
    }
}
