//! Property tests: `StridedSet` algebra must be extensionally equal to the
//! dense `IntervalSet` algebra on random range soups, random train soups,
//! and same-stride comb families, and promotion/demotion must round-trip
//! losslessly.

use atomio_interval::{ByteRange, IntervalSet, StridedSet, Train};
use atomio_vtime::WireSize;
use proptest::prelude::*;

const UNIVERSE: u64 = 96;

fn arb_range() -> impl Strategy<Value = ByteRange> {
    (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ByteRange::new(lo, hi)
    })
}

/// Random dense set, promoted — exercises the compressor on soups.
fn arb_dense_pair() -> impl Strategy<Value = (IntervalSet, StridedSet)> {
    prop::collection::vec(arb_range(), 0..12).prop_map(|rs| {
        let d = IntervalSet::from_ranges(rs);
        let s = StridedSet::from_intervals(&d);
        (d, s)
    })
}

/// Random train (small geometry): exercises the periodic fast paths,
/// including mixed strides and counts.
fn arb_train() -> impl Strategy<Value = Train> {
    (0u64..64, 1u64..8, 0u64..12, 1u64..10)
        .prop_map(|(start, len, gap, count)| Train::new(start, len, len + gap, count))
}

/// Random strided set built by unioning trains (keeps the disjointness
/// invariant through the public API).
fn arb_strided() -> impl Strategy<Value = StridedSet> {
    prop::collection::vec(arb_train(), 0..4).prop_map(|ts| {
        ts.into_iter().fold(StridedSet::new(), |acc, t| {
            acc.union(&StridedSet::from_train(t))
        })
    })
}

/// Same-stride comb family — the paper's column-wise geometry in miniature.
fn arb_comb_pair() -> impl Strategy<Value = (StridedSet, StridedSet)> {
    (
        4u64..24,
        1u64..8,
        1u64..8,
        0u64..16,
        0u64..16,
        2u64..12,
        2u64..12,
    )
        .prop_map(|(stride, la, lb, ca_off, cb_off, ca, cb)| {
            // Both combs share `stride`; run lengths stay strictly below it.
            let mk = |off: u64, l: u64, c: u64| {
                StridedSet::from_train(Train::new(off, 1 + l % (stride - 1), stride, c))
            };
            (mk(ca_off, la, ca), mk(cb_off, lb, cb))
        })
}

fn trains_disjoint_and_sorted(s: &StridedSet) -> bool {
    let sorted = s.trains().windows(2).all(|w| w[0].start() <= w[1].start());
    let total: u64 = s.trains().iter().map(Train::nbytes).sum();
    // No train may be contiguous in disguise (`len == stride` with several
    // runs): those must have been coalesced to a single run, or WireSize,
    // run counts and overlap sweeps would disagree between representations.
    let no_disguised_runs = s
        .trains()
        .iter()
        .all(|t| t.is_run() || t.stride() > t.len());
    // Disjointness check via the dense expansion: covered bytes must equal
    // the sum of per-train bytes.
    sorted && no_disguised_runs && s.to_intervals().total_len() == total
}

proptest! {
    #[test]
    fn promote_demote_roundtrips((d, s) in arb_dense_pair()) {
        prop_assert_eq!(s.to_intervals(), d.clone());
        prop_assert!(trains_disjoint_and_sorted(&s));
        prop_assert_eq!(s.total_len(), d.total_len());
        prop_assert_eq!(s.run_count() as usize, d.run_count());
        prop_assert_eq!(s.span(), d.span());
        // Compression never inflates the wire encoding beyond the dense one.
        prop_assert!(s.wire_size() <= d.wire_size());
    }

    #[test]
    fn strided_matches_dense_on_soups((da, sa) in arb_dense_pair(), (db, sb) in arb_dense_pair()) {
        prop_assert_eq!(sa.union(&sb).to_intervals(), da.union(&db));
        prop_assert_eq!(sa.intersect(&sb).to_intervals(), da.intersect(&db));
        prop_assert_eq!(sa.subtract(&sb).to_intervals(), da.subtract(&db));
        prop_assert_eq!(sa.overlaps(&sb), da.overlaps(&db));
    }

    #[test]
    fn strided_matches_dense_on_train_soups(sa in arb_strided(), sb in arb_strided()) {
        let (da, db) = (sa.to_intervals(), sb.to_intervals());
        let u = sa.union(&sb);
        prop_assert!(trains_disjoint_and_sorted(&u));
        prop_assert_eq!(u.to_intervals(), da.union(&db));
        let x = sa.intersect(&sb);
        prop_assert!(trains_disjoint_and_sorted(&x));
        prop_assert_eq!(x.to_intervals(), da.intersect(&db));
        let m = sa.subtract(&sb);
        prop_assert!(trains_disjoint_and_sorted(&m));
        prop_assert_eq!(m.to_intervals(), da.subtract(&db));
        prop_assert_eq!(sa.overlaps(&sb), da.overlaps(&db));
    }

    #[test]
    fn same_stride_fast_paths_are_exact((sa, sb) in arb_comb_pair()) {
        let (da, db) = (sa.to_intervals(), sb.to_intervals());
        prop_assert_eq!(sa.overlaps(&sb), da.overlaps(&db));
        prop_assert_eq!(sa.intersect(&sb).to_intervals(), da.intersect(&db));
        prop_assert_eq!(sa.subtract(&sb).to_intervals(), da.subtract(&db));
        prop_assert_eq!(sa.union(&sb).to_intervals(), da.union(&db));
        // The same-stride paths stay compressed: results are O(1) trains.
        prop_assert!(sa.intersect(&sb).train_count() <= 4);
        prop_assert!(sa.subtract(&sb).train_count() <= 8);
    }

    #[test]
    fn touching_trains_normalize_to_runs(start in 0u64..64, len in 1u64..8, count in 1u64..10) {
        // A train whose runs touch (`stride == len`) is one contiguous run;
        // construction must normalize it so every derived quantity agrees
        // with the dense form.
        let t = Train::new(start, len, len, count);
        prop_assert!(t.is_run());
        let s = StridedSet::from_train(t);
        prop_assert!(trains_disjoint_and_sorted(&s));
        prop_assert_eq!(s.run_count(), 1);
        prop_assert_eq!(s.wire_size(), 8 + 16);
        prop_assert_eq!(s.to_intervals(), IntervalSet::from_range(ByteRange::at(start, len * count)));
    }

    #[test]
    fn iter_runs_is_ascending_and_lossless(s in arb_strided()) {
        let runs: Vec<ByteRange> = s.iter_runs().collect();
        prop_assert!(runs.windows(2).all(|w| w[0].start <= w[1].start));
        prop_assert_eq!(runs.len() as u64, s.run_count());
        prop_assert_eq!(IntervalSet::from_ranges(runs), s.to_intervals());
    }

    #[test]
    fn range_queries_match_dense(s in arb_strided(), r in arb_range()) {
        let d = s.to_intervals();
        prop_assert_eq!(s.overlaps_range(&r), d.overlaps_range(&r));
        let cuts = IntervalSet::from_ranges(s.cuts_within(&r));
        prop_assert_eq!(cuts, d.intersect(&IntervalSet::from_range(r)));
        let kept = IntervalSet::from_ranges(s.subtract_from_range(&r));
        prop_assert_eq!(kept, IntervalSet::from_range(r).subtract(&d));
    }

    #[test]
    fn algebra_laws_in_compressed_space(sa in arb_strided(), sb in arb_strided(), sc in arb_strided()) {
        // Laws hold extensionally whatever the train decomposition.
        prop_assert_eq!(
            sa.union(&sb).to_intervals(),
            sb.union(&sa).to_intervals()
        );
        prop_assert_eq!(
            sa.intersect(&sb.union(&sc)).to_intervals(),
            sa.intersect(&sb).union(&sa.intersect(&sc)).to_intervals()
        );
        let diff = sa.subtract(&sb);
        let both = sa.intersect(&sb);
        prop_assert_eq!(diff.union(&both).to_intervals(), sa.to_intervals());
        prop_assert!(!diff.overlaps(&both));
    }
}
