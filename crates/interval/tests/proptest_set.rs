//! Property tests for `IntervalSet` against a brute-force point-set model.

use std::collections::BTreeSet;

use atomio_interval::{ByteRange, IntervalSet};
use proptest::prelude::*;

const UNIVERSE: u64 = 96;

fn arb_range() -> impl Strategy<Value = ByteRange> {
    (0..UNIVERSE, 0..UNIVERSE).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ByteRange::new(lo, hi)
    })
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_range(), 0..12).prop_map(IntervalSet::from_ranges)
}

fn points(s: &IntervalSet) -> BTreeSet<u64> {
    s.iter().flat_map(|r| r.start..r.end).collect()
}

fn canonical(s: &IntervalSet) -> bool {
    s.runs().windows(2).all(|w| w[0].end < w[1].start) && s.iter().all(|r| !r.is_empty())
}

proptest! {
    #[test]
    fn construction_is_canonical(s in arb_set()) {
        prop_assert!(canonical(&s));
        prop_assert_eq!(s.total_len(), points(&s).len() as u64);
    }

    #[test]
    fn union_matches_model(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        prop_assert!(canonical(&u));
        let model: BTreeSet<u64> = points(&a).union(&points(&b)).copied().collect();
        prop_assert_eq!(points(&u), model);
    }

    #[test]
    fn intersect_matches_model(a in arb_set(), b in arb_set()) {
        let x = a.intersect(&b);
        prop_assert!(canonical(&x));
        let model: BTreeSet<u64> = points(&a).intersection(&points(&b)).copied().collect();
        prop_assert_eq!(points(&x), model);
    }

    #[test]
    fn subtract_matches_model(a in arb_set(), b in arb_set()) {
        let d = a.subtract(&b);
        prop_assert!(canonical(&d));
        let model: BTreeSet<u64> = points(&a).difference(&points(&b)).copied().collect();
        prop_assert_eq!(points(&d), model);
    }

    #[test]
    fn insert_remove_match_model(s in arb_set(), r in arb_range()) {
        let mut ins = s.clone();
        ins.insert(r);
        prop_assert!(canonical(&ins));
        let mut model = points(&s);
        model.extend(r.start..r.end);
        prop_assert_eq!(points(&ins), model);

        let mut rem = s.clone();
        rem.remove(r);
        prop_assert!(canonical(&rem));
        let model: BTreeSet<u64> =
            points(&s).into_iter().filter(|p| !r.contains(*p)).collect();
        prop_assert_eq!(points(&rem), model);
    }

    #[test]
    fn union_is_commutative_and_associative(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
    }

    #[test]
    fn subtraction_partitions(a in arb_set(), b in arb_set()) {
        // a = (a \ b) ∪ (a ∩ b), and the two parts are disjoint.
        let diff = a.subtract(&b);
        let both = a.intersect(&b);
        prop_assert_eq!(diff.union(&both), a);
        prop_assert!(!diff.overlaps(&both));
        prop_assert!(!diff.overlaps(&b));
    }

    #[test]
    fn complement_involution(a in arb_set()) {
        let universe = ByteRange::new(0, UNIVERSE);
        let cc = a.complement_within(universe).complement_within(universe);
        // Complementing twice restores the part of `a` inside the universe.
        prop_assert_eq!(cc, a.intersect(&IntervalSet::from_range(universe)));
    }

    #[test]
    fn overlap_query_agrees_with_intersection(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_agrees_with_points(s in arb_set(), p in 0..UNIVERSE) {
        prop_assert_eq!(s.contains(p), points(&s).contains(&p));
    }

    #[test]
    fn span_covers_set(s in arb_set()) {
        if let Some(span) = s.span() {
            prop_assert!(s.iter().all(|r| span.contains_range(r)));
            prop_assert_eq!(span.start, s.runs()[0].start);
            prop_assert_eq!(span.end, s.runs().last().unwrap().end);
        } else {
            prop_assert!(s.is_empty());
        }
    }

    #[test]
    fn gaps_complement_runs_within_span(s in arb_set()) {
        if let Some(span) = s.span() {
            let rebuilt = s.union(&s.gaps());
            prop_assert_eq!(rebuilt, IntervalSet::from_range(span));
        }
    }
}
