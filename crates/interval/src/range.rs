use atomio_vtime::WireSize;

/// A half-open byte range `[start, end)` in a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ByteRange {
    pub start: u64,
    pub end: u64,
}

impl ByteRange {
    /// `[start, end)`. Panics if `end < start` (empty ranges are allowed).
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "ByteRange end {end} precedes start {start}");
        ByteRange { start, end }
    }

    /// Range starting at `start` covering `len` bytes.
    pub fn at(start: u64, len: u64) -> Self {
        ByteRange {
            start,
            end: start + len,
        }
    }

    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.start && offset < self.end
    }

    pub fn contains_range(&self, other: &ByteRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// True when the two ranges share at least one byte.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True when the ranges overlap or touch end-to-start (can be coalesced).
    pub fn adjoins(&self, other: &ByteRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection, or `None` when the ranges share no bytes.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(ByteRange { start, end })
    }

    /// Smallest range covering both inputs.
    pub fn hull(&self, other: &ByteRange) -> ByteRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        ByteRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Subtraction `self \ other`: zero, one, or two pieces.
    pub fn subtract(&self, other: &ByteRange) -> (Option<ByteRange>, Option<ByteRange>) {
        match self.intersect(other) {
            None => (Some(*self), None),
            Some(cut) => {
                let left = (self.start < cut.start).then_some(ByteRange {
                    start: self.start,
                    end: cut.start,
                });
                let right = (cut.end < self.end).then_some(ByteRange {
                    start: cut.end,
                    end: self.end,
                });
                (left, right)
            }
        }
    }
}

impl WireSize for ByteRange {
    fn wire_size(&self) -> usize {
        16
    }
}

impl std::fmt::Display for ByteRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = ByteRange::at(10, 5);
        assert_eq!(r, ByteRange::new(10, 15));
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
    }

    #[test]
    fn overlap_and_adjoin() {
        let a = ByteRange::new(0, 10);
        let b = ByteRange::new(10, 20);
        let c = ByteRange::new(5, 15);
        assert!(!a.overlaps(&b), "touching ranges do not overlap");
        assert!(a.adjoins(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn intersection() {
        let a = ByteRange::new(0, 10);
        assert_eq!(
            a.intersect(&ByteRange::new(5, 15)),
            Some(ByteRange::new(5, 10))
        );
        assert_eq!(a.intersect(&ByteRange::new(10, 15)), None);
        assert_eq!(
            a.intersect(&ByteRange::new(2, 3)),
            Some(ByteRange::new(2, 3))
        );
    }

    #[test]
    fn subtraction_cases() {
        let a = ByteRange::new(10, 20);
        // disjoint
        assert_eq!(a.subtract(&ByteRange::new(0, 5)), (Some(a), None));
        // cut in the middle -> two pieces
        assert_eq!(
            a.subtract(&ByteRange::new(12, 15)),
            (Some(ByteRange::new(10, 12)), Some(ByteRange::new(15, 20)))
        );
        // cut the left edge
        assert_eq!(
            a.subtract(&ByteRange::new(0, 15)),
            (None, Some(ByteRange::new(15, 20)))
        );
        // cut the right edge
        assert_eq!(
            a.subtract(&ByteRange::new(15, 30)),
            (Some(ByteRange::new(10, 15)), None)
        );
        // fully covered
        assert_eq!(a.subtract(&ByteRange::new(0, 30)), (None, None));
    }

    #[test]
    fn hull_covers_both() {
        let a = ByteRange::new(0, 5);
        let b = ByteRange::new(20, 30);
        assert_eq!(a.hull(&b), ByteRange::new(0, 30));
        let empty = ByteRange::new(7, 7);
        assert_eq!(empty.hull(&b), b);
        assert_eq!(b.hull(&empty), b);
    }

    #[test]
    fn contains_range_edge_cases() {
        let a = ByteRange::new(10, 20);
        assert!(a.contains_range(&ByteRange::new(10, 20)));
        assert!(a.contains_range(&ByteRange::new(12, 18)));
        assert!(
            a.contains_range(&ByteRange::new(15, 15)),
            "empty range always contained"
        );
        assert!(!a.contains_range(&ByteRange::new(9, 12)));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn rejects_inverted() {
        ByteRange::new(10, 5);
    }
}
