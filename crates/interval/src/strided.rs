//! Run-length-compressed periodic interval sets.
//!
//! The paper's column-wise M×N pattern gives every rank a footprint of M
//! equal-length runs, one per row, all `N` bytes apart. Materializing that
//! as a dense [`IntervalSet`] costs O(M) to build, O(M) to ship through the
//! view-exchange allgather and O(M) per pairwise intersection — §3.4 assumes
//! negotiation overhead proportional to the *description* of the access,
//! not its row count. [`StridedSet`] stores the same byte set as sorted
//! trains of `(start, len, stride, count)` so the description is O(1) per
//! periodic pattern, the wire encoding is charged on the compressed form,
//! and the algebra has O(1) fast paths for the same-stride case that
//! dominates regular array partitionings.
//!
//! All operations are **exact**: whatever the train structure, every
//! operation returns precisely the set a dense expansion would. Mixed-stride
//! operands fall back to stepping over the runs of the smaller train
//! (O(min(count))), never to dense per-byte or per-row materialization of
//! both sides.

use atomio_vtime::WireSize;

use crate::{ByteRange, IntervalSet};

/// A periodic train of byte runs: `count` runs of `len` bytes, the i-th at
/// `start + i*stride`.
///
/// Invariants (enforced by [`Train::new`]): `len >= 1`, `count >= 1`;
/// a single-run train has `stride == len`; a multi-run train has
/// `stride > len` (touching runs coalesce into one longer run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Train {
    start: u64,
    len: u64,
    stride: u64,
    count: u64,
}

// `len` is the per-run byte count, not a container length; a train is
// never empty by invariant.
#[allow(clippy::len_without_is_empty)]
impl Train {
    /// Build a train, normalizing degenerate shapes: `count == 1` forces
    /// `stride = len`, and `stride == len` (touching runs) collapses into a
    /// single run of `len * count` bytes. Panics on empty runs or on
    /// self-overlapping trains (`stride < len` with `count > 1`).
    pub fn new(start: u64, len: u64, stride: u64, count: u64) -> Train {
        assert!(len > 0 && count > 0, "train runs must be non-empty");
        if count == 1 {
            return Train {
                start,
                len,
                stride: len,
                count: 1,
            };
        }
        assert!(
            stride >= len,
            "train stride {stride} under run length {len}: runs would self-overlap"
        );
        if stride == len {
            return Train {
                start,
                len: len * count,
                stride: len * count,
                count: 1,
            };
        }
        Train {
            start,
            len,
            stride,
            count,
        }
    }

    /// A single contiguous run. Returns `None` for an empty range.
    pub fn from_range(r: ByteRange) -> Option<Train> {
        (!r.is_empty()).then(|| Train::new(r.start, r.len(), r.len(), 1))
    }

    pub fn start(&self) -> u64 {
        self.start
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn stride(&self) -> u64 {
        self.stride
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// End offset of the last run (exclusive).
    pub fn end(&self) -> u64 {
        self.start + (self.count - 1) * self.stride + self.len
    }

    /// Total bytes covered (runs are disjoint by invariant).
    pub fn nbytes(&self) -> u64 {
        self.len * self.count
    }

    /// True when the train is one contiguous run.
    pub fn is_run(&self) -> bool {
        self.count == 1
    }

    /// Bounding range `[start, end)`.
    pub fn bounds(&self) -> ByteRange {
        ByteRange::new(self.start, self.end())
    }

    /// The i-th run.
    pub fn nth(&self, i: u64) -> ByteRange {
        debug_assert!(i < self.count);
        ByteRange::at(self.start + i * self.stride, self.len)
    }

    /// All runs, ascending.
    pub fn runs(&self) -> impl Iterator<Item = ByteRange> + '_ {
        (0..self.count).map(|i| self.nth(i))
    }

    /// Index range `[lo, hi)` of runs intersecting `r` (empty when none).
    fn idx_overlapping(&self, r: &ByteRange) -> (u64, u64) {
        if r.is_empty() || r.end <= self.start {
            return (0, 0);
        }
        let hi = ((r.end - self.start - 1) / self.stride + 1).min(self.count);
        let lo = if r.start < self.start + self.len {
            0
        } else {
            (r.start - self.start - self.len) / self.stride + 1
        };
        if lo >= hi {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// True when some run of `self` intersects `r`.
    pub fn overlaps_range(&self, r: &ByteRange) -> bool {
        let (lo, hi) = self.idx_overlapping(r);
        lo < hi
    }

    /// Exact overlap test against another train. O(1) when either train is
    /// a single run or the strides are equal; O(min(count)) otherwise.
    pub fn overlaps(&self, other: &Train) -> bool {
        if !self.bounds().overlaps(&other.bounds()) {
            return false;
        }
        if self.is_run() {
            return other.overlaps_range(&self.bounds());
        }
        if other.is_run() {
            return self.overlaps_range(&other.bounds());
        }
        if self.stride == other.stride {
            return !shift_windows(self, other).is_empty();
        }
        let (small, big) = if self.count <= other.count {
            (self, other)
        } else {
            (other, self)
        };
        small.runs().any(|r| big.overlaps_range(&r))
    }

    /// Sub-train over run indices `[lo, hi)`.
    fn slice(&self, lo: u64, hi: u64) -> Option<Train> {
        (lo < hi).then(|| {
            Train::new(
                self.start + lo * self.stride,
                self.len,
                self.stride,
                hi - lo,
            )
        })
    }
}

impl std::fmt::Display for Train {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_run() {
            write!(f, "[{}, {})", self.start, self.end())
        } else {
            write!(
                f,
                "{}+[0, {})×{}·{}",
                self.start, self.len, self.stride, self.count
            )
        }
    }
}

/// One same-stride interaction: `(period shift j, run-local cut window,
/// affected run-index range of the left train)`.
type ShiftWindow = (i128, (u64, u64), (u64, u64));

/// For two trains of equal stride `d`, the run of `other` shifted by `j`
/// periods intersects the matching run of `self` for every `j` returned
/// here; each entry carries the run-local cut window and the index range of
/// `self`'s runs it applies to. At most `⌈(len_a + len_b)/d⌉ + 1 ≤ 2`
/// entries since both run lengths are below the stride.
fn shift_windows(a: &Train, b: &Train) -> Vec<ShiftWindow> {
    debug_assert_eq!(a.stride, b.stride);
    debug_assert!(!a.is_run() && !b.is_run());
    let d = a.stride as i128;
    let (sa, sb) = (a.start as i128, b.start as i128);
    let (la, lb) = (a.len as i128, b.len as i128);
    // Overlap of a-run i and b-run i+j requires  sa - sb - lb < j*d < sa - sb + la.
    let jmin = (sa - sb - lb).div_euclid(d) + 1;
    let jmax = (sa - sb + la - 1).div_euclid(d);
    let jmin = jmin.max(-(a.count as i128 - 1));
    let jmax = jmax.min(b.count as i128 - 1);
    let mut out = Vec::new();
    for j in jmin..=jmax {
        // Cut window of b-run i+j within a-run i, in run-local coordinates.
        let rel = sb + j * d - sa; // may be negative (cut starts before run)
        let lo = rel.clamp(0, la) as u64;
        let hi = (rel + lb).clamp(0, la) as u64;
        if lo >= hi {
            continue;
        }
        let ilo = (-j).max(0) as u64;
        let ihi = (a.count as i128).min(b.count as i128 - j) as u64;
        if ilo < ihi {
            out.push((j, (lo, hi), (ilo, ihi)));
        }
    }
    out
}

/// `t ∩ r` as up to three trains (left partial run, full middle runs, right
/// partial run), ascending.
fn clip_train_to_range(t: &Train, r: &ByteRange, out: &mut Vec<Train>) {
    let (lo, hi) = t.idx_overlapping(r);
    if lo >= hi {
        return;
    }
    if hi - lo == 1 {
        let piece = t.nth(lo).intersect(r).expect("index said overlap");
        out.extend(Train::from_range(piece));
        return;
    }
    let first = t.nth(lo);
    let last = t.nth(hi - 1);
    let full_lo = if r.contains_range(&first) { lo } else { lo + 1 };
    let full_hi = if r.contains_range(&last) { hi } else { hi - 1 };
    if full_lo > lo {
        out.extend(Train::from_range(first.intersect(r).expect("overlap")));
    }
    if let Some(mid) = t.slice(full_lo, full_hi) {
        out.push(mid);
    }
    if full_hi < hi {
        out.extend(Train::from_range(last.intersect(r).expect("overlap")));
    }
}

/// `r \ t` as up to three trains (left remainder, the gap train between
/// consecutive cut runs, right remainder), ascending.
fn range_minus_train(r: ByteRange, t: &Train, out: &mut Vec<Train>) {
    let (lo, hi) = t.idx_overlapping(&r);
    if lo >= hi {
        out.extend(Train::from_range(r));
        return;
    }
    let first = t.nth(lo);
    if r.start < first.start {
        out.extend(Train::from_range(ByteRange::new(r.start, first.start)));
    }
    // Gaps between consecutive cut runs all lie inside `r`.
    if hi - lo >= 2 && t.stride > t.len {
        out.push(Train::new(
            first.end,
            t.stride - t.len,
            t.stride,
            hi - lo - 1,
        ));
    }
    let last_end = t.nth(hi - 1).end;
    if last_end < r.end {
        out.extend(Train::from_range(ByteRange::new(last_end, r.end)));
    }
}

/// `t \ cut` for one contiguous cut, as up to four trains.
fn train_minus_range(t: &Train, cut: &ByteRange, out: &mut Vec<Train>) {
    let (lo, hi) = t.idx_overlapping(cut);
    if lo >= hi {
        out.push(*t);
        return;
    }
    out.extend(t.slice(0, lo));
    // Only the first and last intersected runs can survive partially: a
    // contiguous cut reaching run `hi-1` covers every run in between.
    let (left, right_of_first) = t.nth(lo).subtract(cut);
    out.extend(left.and_then(Train::from_range));
    if hi - lo == 1 {
        out.extend(right_of_first.and_then(Train::from_range));
    } else {
        let (_, right) = t.nth(hi - 1).subtract(cut);
        out.extend(right.and_then(Train::from_range));
    }
    out.extend(t.slice(hi, t.count));
}

/// `a ∩ b` appended to `out` (pieces pairwise disjoint, not globally
/// sorted).
fn train_intersect(a: &Train, b: &Train, out: &mut Vec<Train>) {
    if !a.bounds().overlaps(&b.bounds()) {
        return;
    }
    if b.is_run() {
        clip_train_to_range(a, &b.bounds(), out);
        return;
    }
    if a.is_run() {
        clip_train_to_range(b, &a.bounds(), out);
        return;
    }
    if a.stride == b.stride {
        for (_, (lo, hi), (ilo, ihi)) in shift_windows(a, b) {
            out.push(Train::new(
                a.start + ilo * a.stride + lo,
                hi - lo,
                a.stride,
                ihi - ilo,
            ));
        }
        return;
    }
    let (small, big) = if a.count <= b.count { (a, b) } else { (b, a) };
    for r in small.runs() {
        clip_train_to_range(big, &r, out);
    }
}

/// `a \ b` appended to `out`.
fn train_minus_train(a: &Train, b: &Train, out: &mut Vec<Train>) {
    if !a.bounds().overlaps(&b.bounds()) {
        out.push(*a);
        return;
    }
    if b.is_run() {
        train_minus_range(a, &b.bounds(), out);
        return;
    }
    if a.is_run() {
        range_minus_train(a.bounds(), b, out);
        return;
    }
    if a.stride == b.stride {
        train_minus_same_stride(a, b, out);
        return;
    }
    if b.count <= a.count {
        // Carve b's runs (ascending, disjoint) out of a.
        let mut acc = vec![*a];
        for cut in b.runs() {
            let mut next = Vec::with_capacity(acc.len() + 3);
            for t in &acc {
                train_minus_range(t, &cut, &mut next);
            }
            acc = next;
        }
        out.extend(acc);
    } else {
        for r in a.runs() {
            range_minus_train(r, b, out);
        }
    }
}

/// Same-stride subtraction: split `a`'s index space at the boundaries of
/// the (at most two) shift windows, then cut each region's run shape once.
fn train_minus_same_stride(a: &Train, b: &Train, out: &mut Vec<Train>) {
    let cuts = shift_windows(a, b);
    if cuts.is_empty() {
        out.push(*a);
        return;
    }
    let mut bounds: Vec<u64> = vec![0, a.count];
    for (_, _, (ilo, ihi)) in &cuts {
        bounds.push(*ilo);
        bounds.push(*ihi);
    }
    bounds.sort_unstable();
    bounds.dedup();
    for w in bounds.windows(2) {
        let (rlo, rhi) = (w[0], w[1]);
        // Run-local pieces of [0, len) minus the cuts active on this region.
        let mut active: Vec<(u64, u64)> = cuts
            .iter()
            .filter(|(_, _, (ilo, ihi))| *ilo <= rlo && rhi <= *ihi)
            .map(|(_, w, _)| *w)
            .collect();
        active.sort_unstable();
        let mut cursor = 0u64;
        let mut pieces: Vec<(u64, u64)> = Vec::with_capacity(active.len() + 1);
        for (clo, chi) in active {
            if clo > cursor {
                pieces.push((cursor, clo));
            }
            cursor = cursor.max(chi);
        }
        if cursor < a.len {
            pieces.push((cursor, a.len));
        }
        for (plo, phi) in pieces {
            out.push(Train::new(
                a.start + rlo * a.stride + plo,
                phi - plo,
                a.stride,
                rhi - rlo,
            ));
        }
    }
}

/// A set of bytes stored as sorted, pairwise-disjoint [`Train`]s.
///
/// Unlike [`IntervalSet`], the representation is not unique (the same byte
/// set can decompose into trains in several ways), so derived `==` is
/// representational; use [`StridedSet::to_intervals`] for extensional
/// comparison. Every operation is exact with respect to the represented
/// byte set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct StridedSet {
    trains: Vec<Train>,
}

impl StridedSet {
    /// The empty set.
    pub fn new() -> Self {
        StridedSet { trains: Vec::new() }
    }

    /// Set of a single train.
    pub fn from_train(t: Train) -> Self {
        StridedSet { trains: vec![t] }
    }

    /// Set of one contiguous range (empty range ⇒ empty set).
    pub fn from_range(r: ByteRange) -> Self {
        Train::from_range(r).map_or_else(StridedSet::new, StridedSet::from_train)
    }

    /// Build from trains whose byte sets are already pairwise disjoint
    /// (e.g. emitted by a validated monotone file view). Sorts and
    /// coalesces; disjointness is the caller's contract.
    pub fn from_disjoint_trains(trains: Vec<Train>) -> Self {
        StridedSet {
            trains: normalize(trains),
        }
    }

    /// Compress a dense set losslessly: greedy detection of runs of equal
    /// length in arithmetic progression. O(runs).
    pub fn from_intervals(s: &IntervalSet) -> Self {
        StridedSet {
            trains: compress_runs(s.runs()),
        }
    }

    /// Compress ascending, non-overlapping `(offset, len)` extents (the
    /// form view segments arrive in), coalescing touching neighbours.
    pub fn from_sorted_extents<I: IntoIterator<Item = (u64, u64)>>(extents: I) -> Self {
        let mut runs: Vec<ByteRange> = Vec::new();
        for (off, len) in extents {
            if len == 0 {
                continue;
            }
            match runs.last_mut() {
                Some(last) if last.end == off => last.end += len,
                Some(last) => {
                    assert!(off >= last.end, "extents must be ascending and disjoint");
                    runs.push(ByteRange::at(off, len));
                }
                None => runs.push(ByteRange::at(off, len)),
            }
        }
        StridedSet {
            trains: compress_runs(&runs),
        }
    }

    /// Lossless expansion to the canonical dense representation.
    pub fn to_intervals(&self) -> IntervalSet {
        IntervalSet::from_ranges(self.trains.iter().flat_map(Train::runs))
    }

    pub fn is_empty(&self) -> bool {
        self.trains.is_empty()
    }

    /// Number of trains in the description (the negotiation cost unit).
    pub fn train_count(&self) -> usize {
        self.trains.len()
    }

    /// Number of runs a dense expansion would hold.
    pub fn run_count(&self) -> u64 {
        self.trains.iter().map(|t| t.count).sum()
    }

    /// Total covered bytes (trains are disjoint).
    pub fn total_len(&self) -> u64 {
        self.trains.iter().map(Train::nbytes).sum()
    }

    /// The trains, sorted by start offset.
    pub fn trains(&self) -> &[Train] {
        &self.trains
    }

    /// Smallest single range covering the set (the file-locking span).
    pub fn span(&self) -> Option<ByteRange> {
        let start = self.trains.first()?.start;
        let end = self.trains.iter().map(Train::end).max()?;
        Some(ByteRange::new(start, end))
    }

    /// True when the two sets share at least one byte.
    pub fn overlaps(&self, other: &StridedSet) -> bool {
        self.trains
            .iter()
            .any(|a| other.trains.iter().any(|b| a.overlaps(b)))
    }

    /// True when `r` intersects the set.
    pub fn overlaps_range(&self, r: &ByteRange) -> bool {
        self.trains.iter().any(|t| t.overlaps_range(r))
    }

    /// Set union.
    pub fn union(&self, other: &StridedSet) -> StridedSet {
        let mut trains = self.trains.clone();
        trains.extend(other.subtract(self).trains);
        StridedSet {
            trains: normalize(trains),
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &StridedSet) -> StridedSet {
        let mut out = Vec::new();
        for a in &self.trains {
            for b in &other.trains {
                train_intersect(a, b, &mut out);
            }
        }
        StridedSet {
            trains: normalize(out),
        }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &StridedSet) -> StridedSet {
        let mut acc = self.trains.clone();
        for b in &other.trains {
            let mut next = Vec::with_capacity(acc.len());
            for a in &acc {
                train_minus_train(a, b, &mut next);
            }
            acc = next;
        }
        StridedSet {
            trains: normalize(acc),
        }
    }

    /// The runs of the set intersecting `r`, clipped to `r`, ascending —
    /// the cuts the rank-ordering view recomputation removes from one view
    /// segment. O(trains + produced runs), independent of total run count.
    pub fn cuts_within(&self, r: &ByteRange) -> Vec<ByteRange> {
        let mut cuts = Vec::new();
        for t in &self.trains {
            let (lo, hi) = t.idx_overlapping(r);
            for i in lo..hi {
                if let Some(c) = t.nth(i).intersect(r) {
                    cuts.push(c);
                }
            }
        }
        cuts.sort_unstable_by_key(|c| c.start);
        cuts
    }

    /// All runs of the set in ascending order — a k-way merge over the
    /// trains' run sequences. O(log trains) per yielded run with no
    /// materialized run list, which is what lets a data-sieving planner
    /// walk a million-run footprint while holding only O(trains) state.
    pub fn iter_runs(&self) -> RunIter<'_> {
        let mut heap = std::collections::BinaryHeap::with_capacity(self.trains.len());
        for (i, t) in self.trains.iter().enumerate() {
            heap.push(std::cmp::Reverse((t.start, i, 0u64)));
        }
        RunIter { set: self, heap }
    }

    /// The subset of the set lying on shard `shard` of a sharded lock
    /// space: byte `b` belongs to shard `(b / unit) % shards` — the
    /// absolute stripe-unit grid a striped file system already uses to
    /// place data, so shard `s`'s slice is exactly the bytes server `s`
    /// stores. The shard's byte ownership is itself a periodic comb
    /// (`unit` bytes every `shards·unit`), so the slice is one compressed
    /// intersection, never a dense expansion. Slices over all shards
    /// partition the set.
    pub fn shard_slice(&self, unit: u64, shards: u64, shard: u64) -> StridedSet {
        assert!(unit > 0 && shards > 0 && shard < shards);
        if shards == 1 {
            return self.clone();
        }
        let Some(span) = self.span() else {
            return StridedSet::new();
        };
        let period = unit * shards;
        // First period whose shard-owned unit could reach the span.
        let first = (span.start / period).saturating_sub(1);
        let start = first * period + shard * unit;
        if start >= span.end {
            return StridedSet::new();
        }
        let count = (span.end - start).div_ceil(period);
        let comb = StridedSet::from_train(Train::new(start, unit, period, count));
        self.intersect(&comb)
    }

    /// Pieces of `r` not covered by the set, ascending — `r \ self` without
    /// materializing the set densely.
    pub fn subtract_from_range(&self, r: &ByteRange) -> Vec<ByteRange> {
        let mut out = Vec::new();
        let mut cursor = r.start;
        for cut in self.cuts_within(r) {
            if cut.start > cursor {
                out.push(ByteRange::new(cursor, cut.start));
            }
            cursor = cursor.max(cut.end);
        }
        if cursor < r.end {
            out.push(ByteRange::new(cursor, r.end));
        }
        out
    }
}

/// Ascending run iterator over a [`StridedSet`] (see
/// [`StridedSet::iter_runs`]).
#[derive(Debug, Clone)]
pub struct RunIter<'s> {
    set: &'s StridedSet,
    /// Min-heap of `(next run start, train index, run index)`.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, u64)>>,
}

impl Iterator for RunIter<'_> {
    type Item = ByteRange;

    fn next(&mut self) -> Option<ByteRange> {
        let std::cmp::Reverse((_, ti, ri)) = self.heap.pop()?;
        let t = &self.set.trains[ti];
        if ri + 1 < t.count {
            self.heap.push(std::cmp::Reverse((
                t.start + (ri + 1) * t.stride,
                ti,
                ri + 1,
            )));
        }
        Some(t.nth(ri))
    }
}

impl From<&IntervalSet> for StridedSet {
    fn from(s: &IntervalSet) -> Self {
        StridedSet::from_intervals(s)
    }
}

impl WireSize for StridedSet {
    /// Charged on the compressed encoding: 8 bytes of header, 16 bytes per
    /// plain run, 32 per periodic train — what a view-exchange message
    /// shipping the strided description would actually carry.
    fn wire_size(&self) -> usize {
        8 + self
            .trains
            .iter()
            .map(|t| if t.is_run() { 16 } else { 32 })
            .sum::<usize>()
    }
}

impl std::fmt::Display for StridedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.trains.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Sort disjoint trains and coalesce: touching runs merge, and a train
/// continued exactly by its successor (same stride and length, next start
/// one period after the last run) absorbs it.
fn normalize(mut trains: Vec<Train>) -> Vec<Train> {
    trains.sort_unstable_by_key(|t| (t.start, t.end()));
    let mut out: Vec<Train> = Vec::with_capacity(trains.len());
    for t in trains {
        match out.last_mut() {
            Some(last) => match try_merge(last, &t) {
                Some(m) => *last = m,
                None => out.push(t),
            },
            None => out.push(t),
        }
    }
    out
}

fn try_merge(a: &Train, b: &Train) -> Option<Train> {
    // Touching contiguous runs.
    if a.is_run() && b.is_run() && a.end() == b.start {
        return Some(Train::new(a.start, a.len + b.len, a.len + b.len, 1));
    }
    // Touching windows of the same comb: every run of `b` starts exactly
    // where the matching run of `a` ends.
    if !a.is_run() && a.stride == b.stride && a.count == b.count && b.start == a.start + a.len {
        return Some(Train::new(a.start, a.len + b.len, a.stride, a.count));
    }
    // Periodic continuation: same shape, next period.
    if !a.is_run() && a.len == b.len && b.start == a.start + a.count * a.stride {
        if b.is_run() {
            return Some(Train::new(a.start, a.len, a.stride, a.count + 1));
        }
        if b.stride == a.stride {
            return Some(Train::new(a.start, a.len, a.stride, a.count + b.count));
        }
    }
    None
}

/// Greedy arithmetic-progression compression of canonical (sorted,
/// disjoint, coalesced) runs.
fn compress_runs(runs: &[ByteRange]) -> Vec<Train> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < runs.len() {
        let len = runs[i].len();
        let mut j = i;
        if i + 1 < runs.len() && runs[i + 1].len() == len {
            let stride = runs[i + 1].start - runs[i].start;
            j = i + 1;
            while j + 1 < runs.len()
                && runs[j + 1].len() == len
                && runs[j + 1].start - runs[j].start == stride
            {
                j += 1;
            }
            out.push(Train::new(runs[i].start, len, stride, (j - i + 1) as u64));
        } else {
            out.push(Train::new(runs[i].start, len, len, 1));
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(ranges: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_ranges(ranges.iter().map(|&(a, b)| ByteRange::new(a, b)))
    }

    fn comb(start: u64, len: u64, stride: u64, count: u64) -> StridedSet {
        StridedSet::from_train(Train::new(start, len, stride, count))
    }

    #[test]
    fn train_normalization() {
        let t = Train::new(10, 5, 5, 4); // touching runs -> one run
        assert!(t.is_run());
        assert_eq!(t.bounds(), ByteRange::new(10, 30));
        let t = Train::new(0, 3, 10, 1); // count 1 -> stride = len
        assert_eq!(t.stride(), 3);
    }

    #[test]
    fn colwise_footprint_is_one_train() {
        // 8 rows of 4 bytes at column 3 of a 16-wide array.
        let rows: Vec<ByteRange> = (0..8u64).map(|r| ByteRange::at(r * 16 + 3, 4)).collect();
        let s = StridedSet::from_intervals(&IntervalSet::from_ranges(rows.iter().copied()));
        assert_eq!(s.train_count(), 1);
        assert_eq!(s.run_count(), 8);
        assert_eq!(s.total_len(), 32);
        assert_eq!(s.to_intervals(), IntervalSet::from_ranges(rows));
    }

    #[test]
    fn same_stride_neighbour_overlap() {
        // Two colwise neighbours sharing 2 ghost columns.
        let a = comb(4, 6, 16, 8); // columns [4, 10)
        let b = comb(8, 6, 16, 8); // columns [8, 14)
        let c = comb(12, 4, 16, 8); // columns [12, 16): disjoint from a
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&c));
        let shared = a.intersect(&b);
        assert_eq!(shared.train_count(), 1);
        assert_eq!(shared.total_len(), 8 * 2);
        assert_eq!(
            shared.to_intervals(),
            a.to_intervals().intersect(&b.to_intervals())
        );
    }

    #[test]
    fn same_stride_union_merges_windows() {
        let a = comb(4, 6, 16, 8);
        let b = comb(8, 6, 16, 8);
        let u = a.union(&b);
        assert_eq!(u.train_count(), 1, "windows merge into one train: {u}");
        assert_eq!(u.to_intervals(), a.to_intervals().union(&b.to_intervals()));
    }

    #[test]
    fn subtract_ghost_columns() {
        let a = comb(0, 8, 16, 4); // columns [0, 8)
        let ghost = comb(6, 4, 16, 4); // columns [6, 10)
        let kept = a.subtract(&ghost);
        assert_eq!(kept.total_len(), 4 * 6);
        assert_eq!(
            kept.to_intervals(),
            a.to_intervals().subtract(&ghost.to_intervals())
        );
    }

    #[test]
    fn mixed_stride_operations_are_exact() {
        let a = comb(0, 3, 10, 7); // stride 10
        let b = comb(1, 4, 7, 9); // stride 7
        for (x, y) in [(&a, &b), (&b, &a)] {
            assert_eq!(
                x.intersect(y).to_intervals(),
                x.to_intervals().intersect(&y.to_intervals())
            );
            assert_eq!(
                x.subtract(y).to_intervals(),
                x.to_intervals().subtract(&y.to_intervals())
            );
            assert_eq!(
                x.union(y).to_intervals(),
                x.to_intervals().union(&y.to_intervals())
            );
            assert_eq!(x.overlaps(y), x.to_intervals().overlaps(&y.to_intervals()));
        }
    }

    #[test]
    fn run_vs_train_cases() {
        let t = comb(10, 2, 8, 5); // runs at 10,18,26,34,42
        let big = StridedSet::from_train(Train::new(0, 100, 100, 1));
        assert_eq!(big.intersect(&t).to_intervals(), t.to_intervals());
        let hole = big.subtract(&t);
        assert_eq!(hole.total_len(), 90);
        assert_eq!(
            hole.to_intervals(),
            big.to_intervals().subtract(&t.to_intervals())
        );
        // A run inside one gap.
        let gap_run = StridedSet::from_train(Train::new(13, 3, 3, 1));
        assert!(!gap_run.overlaps(&t));
    }

    #[test]
    fn wire_size_reflects_compression() {
        let rows: Vec<ByteRange> = (0..4096u64).map(|r| ByteRange::at(r * 8192, 16)).collect();
        let dense_set = IntervalSet::from_ranges(rows.iter().copied());
        let strided = StridedSet::from_intervals(&dense_set);
        assert_eq!(strided.train_count(), 1);
        assert_eq!(strided.wire_size(), 8 + 32);
        assert_eq!(dense_set.wire_size(), 8 + 4096 * 16);
    }

    #[test]
    fn cuts_and_range_subtraction() {
        let ghost = comb(6, 4, 16, 4);
        let row = ByteRange::new(16, 32); // second period
        assert_eq!(ghost.cuts_within(&row), vec![ByteRange::new(22, 26)]);
        assert_eq!(
            ghost.subtract_from_range(&row),
            vec![ByteRange::new(16, 22), ByteRange::new(26, 32)]
        );
        // Range covering several periods.
        let wide = ByteRange::new(0, 64);
        let pieces = ghost.subtract_from_range(&wide);
        let rebuilt = IntervalSet::from_ranges(pieces);
        assert_eq!(
            rebuilt,
            IntervalSet::from_range(wide).subtract(&ghost.to_intervals())
        );
    }

    #[test]
    fn span_and_counters() {
        let s = comb(5, 2, 10, 3).union(&comb(100, 4, 4, 1));
        assert_eq!(s.span(), Some(ByteRange::new(5, 104)));
        assert_eq!(s.total_len(), 10);
        assert_eq!(s.run_count(), 4);
        assert!(StridedSet::new().span().is_none());
        assert!(StridedSet::new().is_empty());
    }

    #[test]
    fn iter_runs_merges_interleaved_trains() {
        // Two combs whose runs interleave: 0,20,40 and 7,27,47.
        let s = comb(0, 3, 20, 3).union(&comb(7, 3, 20, 3));
        let runs: Vec<ByteRange> = s.iter_runs().collect();
        let starts: Vec<u64> = runs.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![0, 7, 20, 27, 40, 47]);
        assert_eq!(
            IntervalSet::from_ranges(runs.iter().copied()),
            s.to_intervals()
        );
        assert_eq!(runs.len() as u64, s.run_count());
        assert!(StridedSet::new().iter_runs().next().is_none());
    }

    #[test]
    fn touching_trains_collapse_to_a_run() {
        // `len == stride` is contiguous in disguise: construction must
        // coalesce it so WireSize, run counts and promote/demote agree.
        let t = Train::new(32, 8, 8, 5);
        assert!(t.is_run());
        assert_eq!(t.bounds(), ByteRange::new(32, 72));
        let s = StridedSet::from_train(t);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.wire_size(), 8 + 16, "must be charged as a plain run");
        // Windows of one comb meeting exactly: one contiguous run.
        let u = comb(0, 4, 8, 4).union(&comb(4, 4, 8, 4));
        assert_eq!(u.train_count(), 1);
        assert_eq!(u.run_count(), 1, "{u}");
    }

    #[test]
    fn from_sorted_extents_coalesces() {
        let s = StridedSet::from_sorted_extents([(0u64, 4u64), (4, 4), (16, 8), (40, 8), (64, 8)]);
        // [0,8) then 3 runs of 8 at stride 24.
        assert_eq!(s.total_len(), 32);
        assert_eq!(
            s.to_intervals(),
            dense(&[(0, 8), (16, 24), (40, 48), (64, 72)])
        );
        assert!(s.train_count() <= 2, "{s}");
    }

    #[test]
    fn shard_slices_partition_the_set() {
        // A colwise comb over a 4-shard, 16-byte-unit grid.
        let s = comb(3, 6, 40, 9).union(&comb(500, 24, 24, 1));
        let (unit, shards) = (16u64, 4u64);
        let mut rebuilt = StridedSet::new();
        let mut total = 0;
        for shard in 0..shards {
            let slice = s.shard_slice(unit, shards, shard);
            // Every byte of the slice really lives on `shard`.
            for run in slice.iter_runs() {
                for unit_idx in run.start / unit..=(run.end - 1) / unit {
                    assert_eq!(unit_idx % shards, shard, "byte on wrong shard");
                }
            }
            total += slice.total_len();
            rebuilt = rebuilt.union(&slice);
        }
        assert_eq!(total, s.total_len(), "slices must not overlap");
        assert_eq!(rebuilt.to_intervals(), s.to_intervals());
    }

    #[test]
    fn shard_slice_single_shard_is_identity() {
        let s = comb(7, 5, 32, 6);
        assert_eq!(s.shard_slice(64, 1, 0).to_intervals(), s.to_intervals());
        assert!(StridedSet::new().shard_slice(16, 4, 2).is_empty());
    }

    #[test]
    fn shard_slice_unit_aligned_comb_stays_on_one_shard() {
        // Runs exactly filling unit 1 of every 4-unit period: the whole set
        // lives on shard 1, every other slice is empty.
        let s = comb(16, 16, 64, 8);
        for shard in 0..4 {
            let slice = s.shard_slice(16, 4, shard);
            if shard == 1 {
                assert_eq!(slice.to_intervals(), s.to_intervals());
            } else {
                assert!(slice.is_empty(), "shard {shard}: {slice}");
            }
        }
    }

    #[test]
    fn roundtrip_examples() {
        for ranges in [
            vec![(0u64, 1u64)],
            vec![(0, 5), (10, 15), (20, 25)],
            vec![(0, 5), (10, 15), (20, 25), (30, 31)],
            vec![(3, 9), (12, 13), (50, 90)],
        ] {
            let d = dense(&ranges);
            assert_eq!(StridedSet::from_intervals(&d).to_intervals(), d);
        }
    }
}
