use atomio_vtime::WireSize;

use crate::ByteRange;

/// A set of bytes represented as sorted, disjoint, non-empty, maximally
/// coalesced half-open runs.
///
/// The canonical form makes `==` structural set equality and keeps every
/// binary operation a linear two-pointer merge.
///
/// ```
/// use atomio_interval::{ByteRange, IntervalSet};
/// let a = IntervalSet::from_ranges([ByteRange::new(0, 10), ByteRange::new(20, 30)]);
/// let b = IntervalSet::from_ranges([ByteRange::new(5, 25)]);
/// assert_eq!(
///     a.intersect(&b),
///     IntervalSet::from_ranges([ByteRange::new(5, 10), ByteRange::new(20, 25)])
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct IntervalSet {
    runs: Vec<ByteRange>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// Set containing a single range (empty input ranges are dropped).
    pub fn from_range(r: ByteRange) -> Self {
        let mut s = IntervalSet::new();
        s.insert(r);
        s
    }

    /// Build from arbitrary (possibly overlapping, unordered) ranges.
    pub fn from_ranges<I: IntoIterator<Item = ByteRange>>(ranges: I) -> Self {
        let mut rs: Vec<ByteRange> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        rs.sort_unstable_by_key(|r| r.start);
        let mut runs: Vec<ByteRange> = Vec::with_capacity(rs.len());
        for r in rs {
            match runs.last_mut() {
                Some(last) if last.adjoins(&r) => last.end = last.end.max(r.end),
                _ => runs.push(r),
            }
        }
        IntervalSet { runs }
    }

    /// Build from `(offset, len)` pairs.
    pub fn from_extents<I: IntoIterator<Item = (u64, u64)>>(extents: I) -> Self {
        Self::from_ranges(extents.into_iter().map(|(o, l)| ByteRange::at(o, l)))
    }

    /// Insert one range, keeping canonical form.
    pub fn insert(&mut self, r: ByteRange) {
        if r.is_empty() {
            return;
        }
        // Find all runs that overlap or adjoin `r` and merge them.
        let lo = self.runs.partition_point(|run| run.end < r.start);
        let hi = self.runs.partition_point(|run| run.start <= r.end);
        if lo == hi {
            self.runs.insert(lo, r);
        } else {
            let merged = ByteRange::new(
                self.runs[lo].start.min(r.start),
                self.runs[hi - 1].end.max(r.end),
            );
            self.runs.splice(lo..hi, std::iter::once(merged));
        }
    }

    /// Remove one range, keeping canonical form.
    pub fn remove(&mut self, r: ByteRange) {
        if r.is_empty() || self.runs.is_empty() {
            return;
        }
        let lo = self.runs.partition_point(|run| run.end <= r.start);
        let hi = self.runs.partition_point(|run| run.start < r.end);
        if lo >= hi {
            return;
        }
        let mut replacement: Vec<ByteRange> = Vec::with_capacity(2);
        let (left, _) = self.runs[lo].subtract(&r);
        if let Some(l) = left {
            replacement.push(l);
        }
        let (_, right) = self.runs[hi - 1].subtract(&r);
        if let Some(rr) = right {
            replacement.push(rr);
        }
        self.runs.splice(lo..hi, replacement);
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of canonical runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of bytes in the set.
    pub fn total_len(&self) -> u64 {
        self.runs.iter().map(ByteRange::len).sum()
    }

    /// The canonical runs, sorted and disjoint.
    pub fn runs(&self) -> &[ByteRange] {
        &self.runs
    }

    pub fn iter(&self) -> impl Iterator<Item = &ByteRange> {
        self.runs.iter()
    }

    /// Smallest single range covering the whole set, or `None` when empty.
    ///
    /// This is exactly the region the paper's *file-locking* strategy locks:
    /// "the file lock must start at the process's first file offset and end
    /// at the very last file offset the process will write" (§3.2).
    pub fn span(&self) -> Option<ByteRange> {
        match (self.runs.first(), self.runs.last()) {
            (Some(a), Some(b)) => Some(ByteRange::new(a.start, b.end)),
            _ => None,
        }
    }

    pub fn contains(&self, offset: u64) -> bool {
        let i = self.runs.partition_point(|run| run.end <= offset);
        self.runs.get(i).is_some_and(|run| run.contains(offset))
    }

    pub fn contains_range(&self, r: &ByteRange) -> bool {
        if r.is_empty() {
            return true;
        }
        let i = self.runs.partition_point(|run| run.end <= r.start);
        self.runs.get(i).is_some_and(|run| run.contains_range(r))
    }

    /// True when the two sets share at least one byte.
    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            if a.overlaps(b) {
                return true;
            }
            if a.end <= b.start {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// True when a single range intersects the set.
    pub fn overlaps_range(&self, r: &ByteRange) -> bool {
        if r.is_empty() {
            return false;
        }
        let i = self.runs.partition_point(|run| run.end <= r.start);
        self.runs.get(i).is_some_and(|run| run.overlaps(r))
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_ranges(self.runs.iter().chain(other.runs.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (&self.runs[i], &other.runs[j]);
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out: Vec<ByteRange> = Vec::with_capacity(self.runs.len());
        let mut j = 0;
        for run in &self.runs {
            let mut cur = *run;
            while j < other.runs.len() && other.runs[j].end <= cur.start {
                j += 1;
            }
            let mut k = j;
            let mut dead = false;
            while k < other.runs.len() && other.runs[k].start < cur.end {
                let cut = &other.runs[k];
                if cut.start > cur.start {
                    out.push(ByteRange::new(cur.start, cut.start));
                }
                if cut.end >= cur.end {
                    dead = true;
                    break;
                }
                cur = ByteRange::new(cut.end.max(cur.start), cur.end);
                k += 1;
            }
            if !dead {
                out.push(cur);
            }
        }
        IntervalSet { runs: out }
    }

    /// Complement within a universe range.
    pub fn complement_within(&self, universe: ByteRange) -> IntervalSet {
        IntervalSet::from_range(universe).subtract(self)
    }

    /// The gaps between consecutive runs (no leading/trailing gap).
    pub fn gaps(&self) -> IntervalSet {
        let runs = self
            .runs
            .windows(2)
            .map(|w| ByteRange::new(w[0].end, w[1].start))
            .collect::<Vec<_>>();
        IntervalSet { runs }
    }

    /// All distinct run boundaries, sorted ascending (used by the atomicity
    /// verifier to decompose a file into elementary coverage regions).
    pub fn boundaries(&self) -> Vec<u64> {
        let mut b = Vec::with_capacity(self.runs.len() * 2);
        for r in &self.runs {
            b.push(r.start);
            b.push(r.end);
        }
        b
    }
}

impl FromIterator<ByteRange> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = ByteRange>>(iter: I) -> Self {
        IntervalSet::from_ranges(iter)
    }
}

impl WireSize for IntervalSet {
    fn wire_size(&self) -> usize {
        8 + self.runs.len() * 16
    }
}

impl std::fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_ranges(ranges.iter().map(|&(a, b)| ByteRange::new(a, b)))
    }

    #[test]
    fn canonical_form_coalesces() {
        let s = set(&[(10, 20), (0, 5), (5, 10), (30, 30)]);
        assert_eq!(s.runs(), &[ByteRange::new(0, 20)]);
        assert_eq!(s.total_len(), 20);
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn insert_merges_neighbours() {
        let mut s = set(&[(0, 10), (20, 30), (40, 50)]);
        s.insert(ByteRange::new(10, 20));
        assert_eq!(s.runs(), &[ByteRange::new(0, 30), ByteRange::new(40, 50)]);
        s.insert(ByteRange::new(29, 45));
        assert_eq!(s.runs(), &[ByteRange::new(0, 50)]);
        s.insert(ByteRange::new(60, 60)); // empty: no-op
        assert_eq!(s.run_count(), 1);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s = set(&[(0, 30)]);
        s.remove(ByteRange::new(10, 20));
        assert_eq!(s.runs(), &[ByteRange::new(0, 10), ByteRange::new(20, 30)]);
        s.remove(ByteRange::new(0, 10));
        assert_eq!(s.runs(), &[ByteRange::new(20, 30)]);
        s.remove(ByteRange::new(25, 100));
        assert_eq!(s.runs(), &[ByteRange::new(20, 25)]);
        s.remove(ByteRange::new(0, 100));
        assert!(s.is_empty());
    }

    #[test]
    fn union_intersect_subtract() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.union(&b), set(&[(0, 30)]));
        assert_eq!(a.intersect(&b), set(&[(5, 10), (20, 25)]));
        assert_eq!(a.subtract(&b), set(&[(0, 5), (25, 30)]));
        assert_eq!(b.subtract(&a), set(&[(10, 20)]));
    }

    #[test]
    fn subtract_many_cuts_in_one_run() {
        let a = set(&[(0, 100)]);
        let b = set(&[(10, 20), (30, 40), (50, 60)]);
        assert_eq!(
            a.subtract(&b),
            set(&[(0, 10), (20, 30), (40, 50), (60, 100)])
        );
    }

    #[test]
    fn overlap_queries() {
        let a = set(&[(0, 10), (20, 30)]);
        assert!(a.overlaps(&set(&[(25, 26)])));
        assert!(!a.overlaps(&set(&[(10, 20)])));
        assert!(a.overlaps_range(&ByteRange::new(9, 10)));
        assert!(!a.overlaps_range(&ByteRange::new(10, 20)));
        assert!(!a.overlaps_range(&ByteRange::new(5, 5)));
        assert!(a.contains(0));
        assert!(!a.contains(15));
        assert!(a.contains_range(&ByteRange::new(22, 28)));
        assert!(!a.contains_range(&ByteRange::new(8, 12)));
    }

    #[test]
    fn span_is_lock_range() {
        let a = set(&[(100, 110), (900, 1000)]);
        assert_eq!(a.span(), Some(ByteRange::new(100, 1000)));
        assert_eq!(IntervalSet::new().span(), None);
    }

    #[test]
    fn complement_and_gaps() {
        let a = set(&[(10, 20), (30, 40)]);
        assert_eq!(a.gaps(), set(&[(20, 30)]));
        assert_eq!(
            a.complement_within(ByteRange::new(0, 50)),
            set(&[(0, 10), (20, 30), (40, 50)])
        );
    }

    #[test]
    fn display_roundtrip_smoke() {
        let a = set(&[(0, 3), (9, 12)]);
        assert_eq!(a.to_string(), "{[0, 3), [9, 12)}");
    }
}
