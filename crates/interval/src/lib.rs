//! Byte-range interval algebra.
//!
//! File views, byte-range locks, overlap matrices and the rank-ordering
//! strategy's view subtraction all reduce to set algebra over half-open byte
//! ranges `[start, end)`. [`IntervalSet`] keeps a canonical form — sorted,
//! disjoint, non-empty, maximally coalesced runs — so equality is structural
//! and every operation is a linear merge.

//! [`StridedSet`] adds a run-length-compressed periodic representation —
//! sorted trains of `(start, len, stride, count)` — so the regular
//! footprints of array partitionings cost O(trains) to describe, exchange
//! and negotiate instead of O(rows), with lossless promotion to and from
//! the dense form.

mod range;
mod set;
mod strided;

pub use range::ByteRange;
pub use set::IntervalSet;
pub use strided::{RunIter, StridedSet, Train};
