//! Byte-range interval algebra.
//!
//! File views, byte-range locks, overlap matrices and the rank-ordering
//! strategy's view subtraction all reduce to set algebra over half-open byte
//! ranges `[start, end)`. [`IntervalSet`] keeps a canonical form — sorted,
//! disjoint, non-empty, maximally coalesced runs — so equality is structural
//! and every operation is a linear merge.

mod range;
mod set;

pub use range::ByteRange;
pub use set::IntervalSet;
