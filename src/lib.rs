//! # atomio — scalable MPI atomicity for concurrent overlapping I/O
//!
//! A from-scratch Rust reproduction of *Liao et al., "Scalable Implementations
//! of MPI Atomicity for Concurrent Overlapping I/O" (ICPP 2003)*.
//!
//! MPI-2's atomic mode demands that when concurrent I/O requests from multiple
//! MPI processes overlap in a shared file, each overlapped region contains data
//! from exactly **one** writer — even when a single MPI request touches many
//! non-contiguous file segments through an MPI *file view*. POSIX atomicity is
//! per-`write()` call and therefore insufficient. This workspace implements and
//! evaluates the paper's three strategies, plus a fourth beyond the paper:
//!
//! 1. **Byte-range file locking** — lock the whole span of the view, serialize.
//! 2. **Graph coloring** — exchange views, color the overlap graph, write in
//!    per-color phases separated by barriers.
//! 3. **Process-rank ordering** — highest rank wins each overlap; everyone else
//!    subtracts the overlap from their view and all ranks write concurrently.
//! 4. **Two-phase collective I/O** ([`collective`]) — A ≤ P aggregator ranks
//!    own disjoint stripe-aligned file domains; an `alltoallv` redistribution
//!    moves the data to its owners (highest rank wins inside the exchange
//!    buffer) and each aggregator issues large contiguous writes. Overlap is
//!    eliminated by construction: zero locks, zero phases, and it works even
//!    on lockless file systems.
//!
//! Because the original testbeds (ASCI Cplant/ENFS, SGI Origin2000/XFS, IBM
//! SP/GPFS) are unavailable, the whole substrate is simulated deterministically:
//! a threads-as-ranks message-passing runtime ([`msg`]), a striped parallel file
//! system with client caching and two lock-manager designs ([`pfs`]), an MPI
//! derived-datatype/file-view engine ([`dtype`]), and a virtual-time cost model
//! ([`vtime`]) that yields reproducible bandwidth figures shaped like the
//! paper's Figure 8.
//!
//! ## Quickstart
//!
//! ```
//! use atomio::prelude::*;
//!
//! // 2-D array of 64 x 256 bytes, column-wise partitioned over 4 ranks with
//! // 8 overlapped columns between neighbours (ghost cells).
//! let spec = ColWise::new(64, 256, 4, 8).unwrap();
//! let profile = PlatformProfile::fast_test();
//! let fs = FileSystem::new(profile.clone());
//!
//! let reports = run(4, profile.net.clone(), |comm| {
//!     let part = spec.partition(comm.rank());
//!     let buf = part.fill(pattern::rank_stamp(comm.rank()));
//!     let mut file = MpiFile::open(&comm, &fs, "demo", OpenMode::ReadWrite).unwrap();
//!     file.set_view(0, part.filetype.clone()).unwrap();
//!     file.set_atomicity(Atomicity::Atomic(Strategy::RankOrdering)).unwrap();
//!     file.write_at_all(0, &buf).unwrap();
//!     file.close().unwrap()
//! });
//! // Every overlapped region now holds bytes from exactly one rank.
//! let check = verify::check_mpi_atomicity(
//!     &fs.snapshot("demo").unwrap(),
//!     &spec.all_views(),
//!     &pattern::rank_stamps(4),
//! );
//! assert!(check.is_atomic());
//! assert!(reports.iter().all(|r| r.bytes_written > 0));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness that regenerates every table and figure of the paper.

pub use atomio_check as check;
pub use atomio_collective as collective;
pub use atomio_core as core;
pub use atomio_dtype as dtype;
pub use atomio_interval as interval;
pub use atomio_msg as msg;
pub use atomio_pfs as pfs;
pub use atomio_trace as trace;
pub use atomio_vtime as vtime;
pub use atomio_workloads as workloads;

/// Commonly used items, re-exported for `use atomio::prelude::*`.
pub mod prelude {
    pub use atomio_collective::{ExchangeSchedule, TwoPhaseConfig, TwoPhaseReport};
    pub use atomio_core::{
        verify, Atomicity, CloseReport, IoPath, LockFootprint, LockGranularity, MpiFile, OpenMode,
        SieveConfig, Strategy, WriteReport,
    };
    pub use atomio_dtype::{ArrayOrder, Datatype, FileView};
    pub use atomio_interval::{ByteRange, IntervalSet, StridedSet, Train};
    pub use atomio_msg::{run, Comm, NetCost};
    pub use atomio_pfs::{
        CacheParams, CoherenceMode, FaultAction, FaultPlan, FaultSite, FaultSnapshot, FileSystem,
        FsError, LatencySnapshot, LockKind, LockMode, PlatformProfile, RestartPolicy,
    };
    pub use atomio_trace::{
        export_chrome, validate_chrome_trace, validate_json, Category, HistogramSnapshot,
        LatencyHistogram, MemorySink, NoopSink, TraceEvent, TraceSink, Tracer, Track,
    };
    pub use atomio_vtime::{bandwidth_mibps, Clock, VNanos};
    pub use atomio_workloads::{
        pattern, BlockBlock, ColWise, CrashRecovery, IndependentStrided, Partition, ReadAnomaly,
        ReaderWriter, RowWise, RwPreset,
    };
}
